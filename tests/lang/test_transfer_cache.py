"""Differential tests: memoised vs cache-disabled term construction.

Caching layers are where soundness bugs hide, so the lang-layer caches get
the same treatment the CDCL core gets against the reference DPLL
(``tests/smt/test_sat_differential.py``): run both paths on randomized
inputs and demand *identical* results.  Identity here is strong — terms are
hash-consed, so the memoised transfer outputs must be the very same interned
objects the uncached symbolic execution constructs, and whole verification
runs must produce outcome-for-outcome equal reports, failures included.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.config import NeighborConfig, NetworkConfig, RouterConfig
from repro.bgp.policy import (
    AddCommunity,
    ClearCommunities,
    DeleteCommunity,
    Disposition,
    MatchAsPathLength,
    MatchCommunity,
    MatchMedRange,
    MatchNot,
    MatchPrefix,
    PrependAsPath,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    SetMed,
    route_map_digest,
)
from repro.bgp.prefix import Prefix, PrefixRange
from repro.bgp.route import Community
from repro.bgp.topology import Edge
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.safety import build_universe, verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import (
    HasCommunity,
    Implies,
    Not,
    predicate_term_cache_stats,
)
from repro.lang.symroute import SymbolicRoute
from repro.lang.transfer import (
    reset_transfer_cache,
    symbolic_originated,
    transfer_cache_disabled,
    transfer_cache_stats,
    transfer_export,
    transfer_import,
)
from repro.smt.terms import clear_intern_cache
from repro.workloads.randomnet import build_random_network

SEED = 20260726

_POOL_COMMUNITIES = [Community(100, v) for v in range(1, 5)]
_POOL_PREFIXES = [
    PrefixRange(Prefix.parse("10.0.0.0/8"), 8, 24),
    PrefixRange(Prefix.parse("192.168.0.0/16"), 16, 32),
    PrefixRange(Prefix.parse("0.0.0.0/0"), 0, 8),
]


def _random_match(rng: random.Random, depth: int = 0):
    kinds = ["community", "prefix", "med", "pathlen"]
    if depth == 0:
        kinds.append("not")
    kind = rng.choice(kinds)
    if kind == "community":
        return MatchCommunity(rng.choice(_POOL_COMMUNITIES))
    if kind == "prefix":
        return MatchPrefix((rng.choice(_POOL_PREFIXES),))
    if kind == "med":
        low = rng.randint(0, 50)
        return MatchMedRange(low, low + rng.randint(0, 100))
    if kind == "pathlen":
        low = rng.randint(0, 3)
        return MatchAsPathLength(low, low + rng.randint(0, 5))
    return MatchNot(_random_match(rng, depth + 1))


def _random_action(rng: random.Random):
    kind = rng.choice(["lp", "med", "add", "del", "clear", "prepend"])
    if kind == "lp":
        return SetLocalPref(rng.randint(0, 300))
    if kind == "med":
        return SetMed(rng.randint(0, 100))
    if kind == "add":
        return AddCommunity(rng.choice(_POOL_COMMUNITIES))
    if kind == "del":
        return DeleteCommunity(rng.choice(_POOL_COMMUNITIES))
    if kind == "clear":
        return ClearCommunities()
    return PrependAsPath(65000 + rng.randint(0, 3), rng.randint(1, 2))


def _random_route_map(rng: random.Random, name: str) -> RouteMap | None:
    if rng.random() < 0.2:
        return None  # no filter on this session
    clauses = []
    for i in range(rng.randint(1, 4)):
        deny = rng.random() < 0.3
        matches = tuple(_random_match(rng) for _ in range(rng.randint(0, 2)))
        actions = (
            ()
            if deny
            else tuple(_random_action(rng) for _ in range(rng.randint(0, 3)))
        )
        clauses.append(
            RouteMapClause(
                seq=(i + 1) * 10,
                disposition=Disposition.DENY if deny else Disposition.PERMIT,
                matches=matches,
                actions=actions,
            )
        )
    return RouteMap(name, tuple(clauses))


def _random_problem(seed: int):
    """A 3-router iBGP triangle with random filters on the external edges."""
    rng = random.Random(SEED + seed)
    from repro.bgp.topology import Topology

    topo = Topology()
    routers = ["R1", "R2", "R3"]
    externals = ["E1", "E2", "E3"]
    for r in routers:
        topo.add_router(r)
    for e in externals:
        topo.add_external(e)
    for i in range(3):
        topo.add_peering(routers[i], externals[i])
    topo.add_peering("R1", "R2")
    topo.add_peering("R2", "R3")
    topo.add_peering("R1", "R3")

    # A deliberately arbitrary invariant — random maps may well violate it,
    # which is the point: failing outcomes must also be identical.  Even
    # seeds guard the tracked community at the border (external imports
    # deny it, and it is outside the random action pool), so those configs
    # verify; odd seeds leave the border open and generally fail.
    tracked = Community(100, 9) if seed % 2 == 0 else Community(100, 1)
    guard = RouteMapClause(
        seq=1, disposition=Disposition.DENY, matches=(MatchCommunity(tracked),)
    )

    def _external_import(name: str) -> RouteMap:
        inner = _random_route_map(rng, f"{name}-EXT-IN")
        clauses = (guard,) + (inner.clauses if inner is not None else (RouteMapClause(5),))
        if seed % 2 == 0:
            return RouteMap(f"{name}-EXT-IN", clauses)
        return inner if inner is not None else RouteMap(f"{name}-EXT-IN", (RouteMapClause(5),))

    config = NetworkConfig(topo)
    for i, e in enumerate(externals):
        config.set_external_asn(e, 65100 + i)
    for i, name in enumerate(routers):
        rc = RouterConfig(name, 65000)
        rc.add_neighbor(
            NeighborConfig(
                externals[i],
                65100 + i,
                import_map=_external_import(name),
                export_map=_random_route_map(rng, f"{name}-EXT-OUT"),
            )
        )
        for peer in routers:
            if peer != name:
                rc.add_neighbor(
                    NeighborConfig(
                        peer,
                        65000,
                        import_map=_random_route_map(rng, f"{name}-{peer}-IN"),
                    )
                )
        config.add_router_config(rc)

    invariants = InvariantMap(topo, default=Not(HasCommunity(tracked)))
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(HasCommunity(tracked)), name="diff"
    )
    return config, prop, invariants


def _outcome_signature(report):
    sig = []
    for o in report.outcomes:
        failure = None
        if o.failure is not None:
            failure = (o.failure.input_route, o.failure.output_route, o.failure.rejected)
        sig.append((o.check.description, o.passed, o.unknown, failure))
    return sig


@pytest.mark.parametrize("seed", range(10))
def test_check_outcomes_identical_cache_on_vs_off(seed):
    """Full verification agrees outcome-for-outcome with caching disabled."""
    config, prop, invariants = _random_problem(seed)
    reset_transfer_cache()
    report_on = verify_safety(config, prop, invariants)
    with transfer_cache_disabled():
        report_off = verify_safety(config, prop, invariants)
    assert _outcome_signature(report_on) == _outcome_signature(report_off)


def test_differential_suite_exercises_both_verdicts():
    """Guard against a skewed generator silently weakening the suite."""
    passed = set()
    for seed in range(10):
        config, prop, invariants = _random_problem(seed)
        passed.add(verify_safety(config, prop, invariants).passed)
    assert passed == {True, False}


@pytest.mark.parametrize("model,seed", [("gnp", 1), ("ba", 2), ("ring", 3)])
def test_transfer_terms_identical_on_randomnets(model, seed):
    """Memoised transfer outputs are the same interned terms as uncached ones."""
    config = build_random_network(8, model=model, seed=seed)
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    universe = build_universe(config, None, [], (ghost,))
    route = SymbolicRoute.fresh("r", universe)
    reset_transfer_cache()
    for edge in sorted(config.topology.edges):
        for transfer in (transfer_import, transfer_export):
            acc_on, out_on = transfer(config, edge, route, (ghost,))
            with transfer_cache_disabled():
                acc_off, out_off = transfer(config, edge, route, (ghost,))
            assert acc_on is acc_off, f"accepted differs on {edge}"
            _assert_routes_identical(out_on, out_off, edge)
        syms_on = symbolic_originated(config, edge, universe, (ghost,))
        with transfer_cache_disabled():
            syms_off = symbolic_originated(config, edge, universe, (ghost,))
        assert len(syms_on) == len(syms_off)
        for a, b in zip(syms_on, syms_off):
            _assert_routes_identical(a, b, edge)
    stats = transfer_cache_stats()
    assert stats.misses > 0  # the cache actually engaged


def _assert_routes_identical(a: SymbolicRoute, b: SymbolicRoute, edge) -> None:
    for field in (
        "prefix_addr",
        "prefix_len",
        "local_pref",
        "med",
        "next_hop",
        "origin",
        "as_path_len",
    ):
        assert getattr(a, field) is getattr(b, field), f"{field} differs on {edge}"
    assert dict(a.communities) == dict(b.communities)
    assert dict(a.as_path_members) == dict(b.as_path_members)
    assert dict(a.ghosts) == dict(b.ghosts)
    for mapping_a, mapping_b in (
        (a.communities, b.communities),
        (a.as_path_members, b.as_path_members),
        (a.ghosts, b.ghosts),
    ):
        for key in mapping_a:
            assert mapping_a[key] is mapping_b[key], f"{key} term differs on {edge}"


def test_edges_with_equal_policy_share_one_cache_entry():
    """Same filter content on different edges = one symbolic execution."""
    config = build_random_network(6, model="ring", seed=0)
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    universe = build_universe(config, None, [], (ghost,))
    route = SymbolicRoute.fresh("r", universe)
    reset_transfer_cache()
    # E3->R3 and E4->R4 run the same generic prefix filter with the same
    # (non-source) ghost discipline; their outputs must be one cache entry.
    r3 = transfer_import(config, Edge("E3", "R3"), route, (ghost,))
    r4 = transfer_import(config, Edge("E4", "R4"), route, (ghost,))
    assert r3 is r4
    stats = transfer_cache_stats()
    assert stats.hits >= 1


def test_cache_stats_and_toggle():
    config = build_random_network(4, model="ring", seed=7)
    universe = build_universe(config, None, [], ())
    route = SymbolicRoute.fresh("r", universe)
    edge = Edge("E2", "R2")
    reset_transfer_cache()
    transfer_import(config, edge, route)
    transfer_import(config, edge, route)
    stats = transfer_cache_stats()
    assert (stats.hits, stats.misses) == (1, 1)
    assert stats.hit_rate == 0.5
    with transfer_cache_disabled():
        transfer_import(config, edge, route)
    assert transfer_cache_stats().lookups == 2  # cache-off calls don't count
    # Predicate-term lowering shares the master toggle.
    pred = Not(HasCommunity(Community(100, 1)))
    from repro.lang.predicates import predicate_term

    before = predicate_term_cache_stats().lookups
    with transfer_cache_disabled():
        predicate_term(pred, route)
    assert predicate_term_cache_stats().lookups == before


def test_intern_table_clear_drops_cache_entries():
    """Cached term graphs must die with the intern table (like fresh())."""
    config = build_random_network(4, model="ring", seed=9)
    universe = build_universe(config, None, [], ())
    route = SymbolicRoute.fresh("r", universe)
    edge = Edge("E2", "R2")
    reset_transfer_cache()
    transfer_import(config, edge, route)
    clear_intern_cache()
    try:
        route2 = SymbolicRoute.fresh("r", universe)
        acc, out = transfer_import(config, edge, route2)
        # A post-clear call must rebuild from the new intern table, not hand
        # back a stale graph: the accepted term is interned *now*.
        with transfer_cache_disabled():
            acc_ref, __ = transfer_import(config, edge, route2)
        assert acc is acc_ref
    finally:
        clear_intern_cache()
        reset_transfer_cache()


def test_route_map_digest_is_content_based():
    rm1 = RouteMap("A", (RouteMapClause(10, matches=(MatchCommunity(Community(1, 2)),)),))
    rm2 = RouteMap("A", (RouteMapClause(10, matches=(MatchCommunity(Community(1, 2)),)),))
    rm3 = RouteMap("B", rm1.clauses)
    assert route_map_digest(rm1) == route_map_digest(rm2)
    assert route_map_digest(rm1) != route_map_digest(rm3)  # name is content here
    assert route_map_digest(None) == "-"
