"""CLI solver warm-start (PR 7): cache-restored learnt clauses.

The acceptance claim, counter-asserted across real process boundaries:
a cold ``reverify --cache`` run persists per-owner solver state (learnt
clauses plus preamble digests) alongside the outcome cache, and a warm
run in a **fresh process** restores it and reports

    ``solver reuse: restored N learnt clauses for M owners; K imported
    into sessions``

with ``N``, ``M`` and ``K`` all positive.  The workload is the WAN
ip-reuse family — the one whose checks actually conflict and learn —
expressed through the public config/spec JSON formats only.

``--no-solver-reuse`` is the escape hatch: the line disappears and the
saved solver state is ignored, with identical verification output.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bgp.configjson import config_to_json
from repro.bgp.policy import Disposition, MatchPrefix, RouteMap, RouteMapClause
from repro.bgp.prefix import PrefixRange
from repro.bgp.topology import Edge
from repro.cli import main
from repro.lang.specjson import (
    SafetySpec,
    VerificationSpec,
    location_to_str,
    spec_to_json,
)
from repro.workloads.wan import build_wan
from repro.workloads.wan_properties import ip_reuse_safety_problem

REUSE_LINE = re.compile(
    r"solver reuse: restored (\d+) learnt clauses for (\d+) owners; "
    r"(\d+) imported into sessions"
)


def _wan_spec_json(wan, region: int = 0) -> str:
    """The region-0 ip-reuse safety family as a public spec document."""
    problem = ip_reuse_safety_problem(wan, region)
    dc_edges = [
        Edge(dc, router)
        for dc, (dc_region, router) in wan.datacenters.items()
        if dc_region == region
    ]
    spec = VerificationSpec(
        ghost_docs=[
            {
                "name": f"FromRegion{region}",
                "kind": "source",
                "sources": [location_to_str(e) for e in dc_edges],
            }
        ],
        safety=[
            SafetySpec(
                property=prop,
                invariants_default=problem.invariants.default,
                invariants_overrides=dict(problem.invariants._overrides),
            )
            for prop in problem.properties
        ],
    )
    return spec_to_json(spec)


def _benign_edit(config) -> None:
    """Prepend a no-effect deny (unused prefix) to one router's import."""
    router = sorted(config.routers)[0]
    neighbor_name = sorted(config.routers[router].neighbors)[0]
    neighbor = config.routers[router].neighbors[neighbor_name]
    deny = RouteMapClause(
        1,
        Disposition.DENY,
        matches=(MatchPrefix((PrefixRange.parse("203.0.113.0/24 le 32"),)),),
    )
    if neighbor.import_map is None:
        neighbor.import_map = RouteMap("EDIT-IN", (deny,))
    else:
        neighbor.import_map = RouteMap(
            neighbor.import_map.name, (deny,) + neighbor.import_map.clauses
        )


@pytest.fixture
def wan_setup(tmp_path):
    wan = build_wan(regions=2, routers_per_region=3)
    (tmp_path / "base.json").write_text(config_to_json(wan.config))
    edited = build_wan(regions=2, routers_per_region=3).config
    _benign_edit(edited)
    (tmp_path / "edited.json").write_text(config_to_json(edited))
    (tmp_path / "spec.json").write_text(_wan_spec_json(wan))
    return {
        "base": str(tmp_path / "base.json"),
        "edited": str(tmp_path / "edited.json"),
        "spec": str(tmp_path / "spec.json"),
        "cache": str(tmp_path / "cachedir"),
    }


def _cli_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def test_warm_reverify_restores_learnt_clauses_across_processes(wan_setup):
    s = wan_setup
    env = _cli_env()
    args = [sys.executable, "-m", "repro.cli", "reverify",
            s["base"], s["edited"], s["spec"], "--cache", s["cache"]]

    cold = subprocess.run(args, env=env, capture_output=True, text=True)
    assert cold.returncode == 0, cold.stderr
    assert "base run skipped" not in cold.stdout
    assert "solver reuse: restored" not in cold.stdout

    warm = subprocess.run(args, env=env, capture_output=True, text=True)
    assert warm.returncode == 0, warm.stderr
    assert "base run skipped" in warm.stdout
    match = REUSE_LINE.search(warm.stdout)
    assert match, f"missing solver-reuse line in:\n{warm.stdout}"
    restored, owners, imported = map(int, match.groups())
    assert restored > 0
    assert owners > 0
    assert imported > 0


def test_no_solver_reuse_flag_suppresses_restore(wan_setup, capsys):
    s = wan_setup
    base_args = ["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]]
    assert main(base_args) == 0
    capsys.readouterr()

    assert main(base_args + ["--no-solver-reuse"]) == 0
    out = capsys.readouterr().out
    assert "base run skipped" in out
    assert "solver reuse: restored" not in out
    assert "PASSED" in out


def test_flag_does_not_leak_across_invocations(wan_setup, capsys):
    # In-process main() calls share the module toggle; a --no-solver-reuse
    # run must not disable reuse for the next plain run.
    s = wan_setup
    base_args = ["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]]
    assert main(base_args + ["--no-solver-reuse"]) == 0
    capsys.readouterr()
    assert main(base_args) == 0
    out = capsys.readouterr().out
    assert REUSE_LINE.search(out)


def test_warm_and_cold_reports_identical(wan_setup, capsys):
    s = wan_setup
    base_args = ["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]]
    assert main(base_args) == 0
    capsys.readouterr()

    assert main(base_args) == 0
    warm_out = capsys.readouterr().out
    assert main(base_args + ["--no-solver-reuse"]) == 0
    cold_out = capsys.readouterr().out

    def reports(text):
        # Keep the verdicts, drop the size stats: pre-asserting the
        # preamble legitimately shifts per-check marginal vars/clauses.
        return [
            line.split(" — ")[0] for line in text.splitlines()
            if "safety at" in line or "reverify: consulted" in line
        ]

    assert reports(warm_out) == reports(cold_out)
    assert any("PASSED" in line for line in reports(warm_out))
