"""Tests for the JSON spec codec and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.bgp.configjson import config_to_json
from repro.bgp.topology import Edge
from repro.cli import main
from repro.lang.predicates import (
    AllOf,
    AnyOf,
    AsPathHas,
    FalsePred,
    GhostIs,
    HasCommunity,
    Implies,
    LocalPrefIn,
    MedIn,
    Not,
    PrefixIn,
    TruePred,
)
from repro.bgp.prefix import Prefix
from repro.bgp.route import Community
from repro.lang.specjson import (
    location_from_str,
    predicate_from_json,
    predicate_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.workloads.figure1 import build_figure1


CONFIG_TEXT = """
external ISP1 as 100
external ISP2 as 200
external Customer as 300
router R1 as 65000
  neighbor ISP1 as 100
    import route-map ISP1-IN
  neighbor R2 as 65000
  neighbor R3 as 65000
router R2 as 65000
  neighbor ISP2 as 200
    export route-map ISP2-OUT
  neighbor R1 as 65000
  neighbor R3 as 65000
router R3 as 65000
  neighbor Customer as 300
  neighbor R1 as 65000
  neighbor R2 as 65000
route-map ISP1-IN
  clause 10 permit
    add community 100:1
route-map ISP2-OUT
  clause 10 deny
    match community 100:1
  clause 20 permit
"""

SPEC = {
    "ghosts": [{"name": "FromISP1", "kind": "source", "sources": ["ISP1->R1"]}],
    "safety": [
        {
            "name": "no-transit",
            "location": "R2->ISP2",
            "predicate": {"kind": "not", "inner": {"kind": "ghost", "name": "FromISP1"}},
            "invariants": {
                "default": {
                    "kind": "implies",
                    "antecedent": {"kind": "ghost", "name": "FromISP1"},
                    "consequent": {"kind": "community", "community": "100:1"},
                },
                "overrides": {
                    "R2->ISP2": {
                        "kind": "not",
                        "inner": {"kind": "ghost", "name": "FromISP1"},
                    }
                },
            },
        }
    ],
}


# ---------------------------------------------------------------------------
# Predicate codec
# ---------------------------------------------------------------------------

ROUNDTRIP_PREDICATES = [
    TruePred(),
    FalsePred(),
    HasCommunity(Community(100, 1)),
    PrefixIn.under(Prefix.parse("10.0.0.0/8")),
    GhostIs("X"),
    GhostIs("X", False),
    AsPathHas(666),
    LocalPrefIn(10, 20),
    MedIn(0, 5),
    Not(HasCommunity(Community(1, 1))),
    AllOf((TruePred(), MedIn(0, 1))),
    AnyOf((AsPathHas(1), AsPathHas(2))),
    Implies(GhostIs("X"), HasCommunity(Community(2, 2))),
]


@pytest.mark.parametrize("pred", ROUNDTRIP_PREDICATES, ids=lambda p: repr(p))
def test_predicate_json_roundtrip(pred):
    doc = predicate_to_json(pred)
    back = predicate_from_json(doc)
    assert back == pred


def test_predicate_unknown_kind_raises():
    with pytest.raises(ValueError):
        predicate_from_json({"kind": "mystery"})


def test_location_parsing():
    assert location_from_str("R1") == "R1"
    assert location_from_str("R1->R2") == Edge("R1", "R2")
    assert location_from_str(" R1 -> R2 ") == Edge("R1", "R2")


def test_spec_roundtrip():
    spec = spec_from_json(json.dumps(SPEC))
    assert len(spec.safety) == 1
    text = spec_to_json(spec)
    again = spec_from_json(text)
    assert again.safety[0].property.name == "no-transit"
    assert again.safety[0].property.location == Edge("R2", "ISP2")


def test_spec_ghost_building():
    spec = spec_from_json(json.dumps(SPEC))
    config = build_figure1()
    (ghost,) = spec.build_ghosts(config.topology)
    assert ghost.name == "FromISP1"
    assert ghost.import_update(Edge("ISP1", "R1")) is True
    assert ghost.import_update(Edge("ISP2", "R2")) is False


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "network.cfg"
    path.write_text(CONFIG_TEXT)
    return str(path)


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


def test_cli_parse(config_file, capsys):
    assert main(["parse", config_file]) == 0
    out = capsys.readouterr().out
    assert "3 routers" in out
    assert "router R1 (AS 65000)" in out


def test_cli_parse_json_dump_roundtrips(config_file, tmp_path, capsys):
    assert main(["parse", config_file, "--dump-json"]) == 0
    out = capsys.readouterr().out
    json_part = out[out.index("{") :]
    path = tmp_path / "network.json"
    path.write_text(json_part)
    assert main(["parse", str(path)]) == 0


def test_cli_verify_passes(config_file, spec_file, capsys):
    assert main(["verify", config_file, spec_file]) == 0
    out = capsys.readouterr().out
    assert "PASSED" in out
    assert "totals:" in out


def test_cli_verify_fails_on_buggy_config(tmp_path, spec_file, capsys):
    # Drop the tagging action from ISP1-IN: no-transit must fail.
    broken = CONFIG_TEXT.replace("    add community 100:1\n", "")
    path = tmp_path / "broken.cfg"
    path.write_text(broken)
    assert main(["verify", str(path), spec_file]) == 1
    out = capsys.readouterr().out
    assert "FAILED" in out
    assert "blamed router: R1" in out


def test_cli_verify_json_config(tmp_path, spec_file):
    config = build_figure1()
    path = tmp_path / "fig1.json"
    path.write_text(config_to_json(config))
    assert main(["verify", str(path), spec_file]) == 0


def test_cli_error_on_missing_file(spec_file):
    assert main(["verify", "/nonexistent.cfg", spec_file]) == 2


def test_cli_verify_with_jobs(config_file, spec_file, capsys):
    assert main(["verify", config_file, spec_file, "--jobs", "2"]) == 0
    assert "PASSED" in capsys.readouterr().out


def test_cli_verify_with_jobs_auto_and_serial(config_file, spec_file, capsys):
    assert main(["verify", config_file, spec_file, "--jobs", "auto"]) == 0
    capsys.readouterr()
    # --jobs 1 forces the serial path.
    assert main(["verify", config_file, spec_file, "--jobs", "1"]) == 0
    assert "PASSED" in capsys.readouterr().out


def test_cli_rejects_bad_jobs(config_file, spec_file, capsys):
    with pytest.raises(SystemExit):
        main(["verify", config_file, spec_file, "--jobs", "zero"])
    with pytest.raises(SystemExit):
        main(["verify", config_file, spec_file, "--jobs", "0"])


def test_cli_verbose_breakdown(config_file, spec_file, capsys):
    assert main(["verify", config_file, spec_file, "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "check breakdown:" in out


LIVENESS_SPEC = {
    "safety": [],
    "liveness": [
        {
            "name": "customer-reaches-isp2",
            "location": "R2->ISP2",
            "predicate": {
                "kind": "prefix-in",
                "ranges": ["20.0.0.0/8 ge 8 le 24"],
            },
            "path": ["Customer->R3", "R3", "R3->R2", "R2", "R2->ISP2"],
            "constraints": [
                {"kind": "prefix-in", "ranges": ["20.0.0.0/8 ge 8 le 24"]},
                {
                    "kind": "all",
                    "inners": [
                        {"kind": "prefix-in", "ranges": ["20.0.0.0/8 ge 8 le 24"]},
                        {"kind": "not", "inner": {"kind": "community", "community": "100:1"}},
                    ],
                },
                {
                    "kind": "all",
                    "inners": [
                        {"kind": "prefix-in", "ranges": ["20.0.0.0/8 ge 8 le 24"]},
                        {"kind": "not", "inner": {"kind": "community", "community": "100:1"}},
                    ],
                },
                {
                    "kind": "all",
                    "inners": [
                        {"kind": "prefix-in", "ranges": ["20.0.0.0/8 ge 8 le 24"]},
                        {"kind": "not", "inner": {"kind": "community", "community": "100:1"}},
                    ],
                },
                {"kind": "prefix-in", "ranges": ["20.0.0.0/8 ge 8 le 24"]},
            ],
        }
    ],
}


def test_cli_liveness_spec(tmp_path, capsys):
    # The built Figure 1 network (with the customer-prefix denies on the
    # ISP imports) proves the liveness property; serialise it to JSON.
    config = build_figure1()
    config_path = tmp_path / "fig1.json"
    config_path.write_text(config_to_json(config))
    spec_path = tmp_path / "liveness.json"
    spec_path.write_text(json.dumps(LIVENESS_SPEC))
    assert main(["verify", str(config_path), str(spec_path)]) == 0
    out = capsys.readouterr().out
    assert "liveness" in out and "PASSED" in out


def test_cli_config_directory(tmp_path, capsys):
    # Production-style layout: one file per device plus a policies file.
    confdir = tmp_path / "network"
    confdir.mkdir()
    devices, __, rest = CONFIG_TEXT.partition("\nroute-map")
    policies = "route-map" + rest
    for i, stanza in enumerate(devices.split("router ")[1:]):
        (confdir / f"r{i}.cfg").write_text("router " + stanza)
    (confdir / "externals.cfg").write_text(
        "\n".join(l for l in devices.splitlines() if l.startswith("external"))
    )
    (confdir / "policies.cfg").write_text(policies)
    assert main(["parse", str(confdir)]) == 0
    out = capsys.readouterr().out
    assert "3 routers" in out


def test_cli_empty_directory_errors(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["parse", str(empty)]) == 2


def _write_fig1_edit(tmp_path, name, edit=None):
    """Serialise a (possibly edited) Figure 1 config to JSON."""
    config = build_figure1()
    if edit is not None:
        edit(config)
    path = tmp_path / name
    path.write_text(config_to_json(config))
    return str(path)


def _benign_r3_edit(config):
    from repro.bgp.policy import Disposition, MatchPrefix, RouteMap, RouteMapClause
    from repro.bgp.prefix import PrefixRange

    neighbor = config.routers["R3"].neighbors["Customer"]
    deny = RouteMapClause(
        1,
        Disposition.DENY,
        matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
    )
    neighbor.import_map = RouteMap("CUST-IN", (deny,) + neighbor.import_map.clauses)


def _breaking_r2_edit(config):
    from repro.bgp.policy import DeleteCommunity, RouteMap, RouteMapClause
    from repro.workloads.figure1 import TRANSIT_COMMUNITY

    config.routers["R2"].neighbors["R1"].import_map = RouteMap(
        "STRIP", (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),)
    )


def test_cli_reverify_passes_and_reports_reuse(tmp_path, spec_file, capsys):
    base = _write_fig1_edit(tmp_path, "base.json")
    edited = _write_fig1_edit(tmp_path, "edited.json", _benign_r3_edit)
    assert main(["reverify", base, edited, spec_file]) == 0
    out = capsys.readouterr().out
    assert "config diff: changed: R3" in out
    assert "PASSED" in out
    # The single-router edit consulted only R3's owner group.
    assert "reverify: consulted 6 of 19 checks (6 re-run, 13 reused)" in out


def test_cli_reverify_detects_breaking_edit(tmp_path, spec_file, capsys):
    base = _write_fig1_edit(tmp_path, "base.json")
    edited = _write_fig1_edit(tmp_path, "edited.json", _breaking_r2_edit)
    assert main(["reverify", base, edited, spec_file]) == 1
    out = capsys.readouterr().out
    assert "FAILED" in out
    assert "blamed router: R2" in out


def test_cli_reverify_liveness_spec(tmp_path, capsys):
    base = _write_fig1_edit(tmp_path, "base.json")
    edited = _write_fig1_edit(tmp_path, "edited.json", _benign_r3_edit)
    spec_path = tmp_path / "liveness.json"
    spec_path.write_text(json.dumps(LIVENESS_SPEC))
    assert main(["reverify", base, edited, str(spec_path)]) == 0
    out = capsys.readouterr().out
    assert "liveness" in out and "PASSED" in out
    assert "reverify: consulted" in out


def test_cli_reverify_accepts_budget_and_verbose(tmp_path, spec_file, capsys):
    base = _write_fig1_edit(tmp_path, "base.json")
    edited = _write_fig1_edit(tmp_path, "edited.json", _benign_r3_edit)
    assert (
        main(["reverify", base, edited, spec_file, "--budget", "100000", "--verbose"])
        == 0
    )
    out = capsys.readouterr().out
    assert "base: " in out  # verbose shows the base run summary too


def test_cli_diff(tmp_path, capsys):
    old = build_figure1()
    new = build_figure1()
    from repro.bgp.policy import RouteMap

    new.routers["R2"].neighbors["R1"].import_map = RouteMap.permit_all()
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(config_to_json(old))
    new_path.write_text(config_to_json(new))
    assert main(["diff", str(old_path), str(new_path)]) == 1
    out = capsys.readouterr().out
    assert "changed: R2" in out
    assert main(["diff", str(old_path), str(old_path)]) == 0
