"""Tests for topology construction and NetworkConfig policy functions."""

from __future__ import annotations

import pytest

from repro.bgp.config import NeighborConfig, NetworkConfig, RouterConfig
from repro.bgp.policy import RouteMap
from repro.bgp.prefix import Prefix
from repro.bgp.route import Community, Route
from repro.bgp.topology import Edge, Topology
from repro.workloads.figure1 import build_figure1


def test_topology_basic_construction():
    topo = Topology()
    topo.add_router("R1")
    topo.add_external("E1")
    topo.add_peering("R1", "E1")
    assert topo.has_edge("R1", "E1") and topo.has_edge("E1", "R1")
    assert topo.routers == {"R1"}
    assert topo.externals == {"E1"}
    assert topo.successors("R1") == {"E1"}
    assert topo.predecessors("R1") == {"E1"}


def test_topology_rejects_unknown_and_dual_roles():
    topo = Topology()
    topo.add_router("R1")
    with pytest.raises(ValueError):
        topo.add_edge("R1", "nowhere")
    with pytest.raises(ValueError):
        topo.add_external("R1")
    topo.add_external("E1")
    with pytest.raises(ValueError):
        topo.add_router("E1")


def test_topology_rejects_external_to_external_edge():
    topo = Topology()
    topo.add_external("E1")
    topo.add_external("E2")
    with pytest.raises(ValueError):
        topo.add_edge("E1", "E2")


def test_edge_classification():
    config = build_figure1()
    topo = config.topology
    internal = set(topo.internal_edges())
    external = set(topo.external_edges())
    assert Edge("R1", "R2") in internal
    assert Edge("ISP1", "R1") in external
    assert not internal & external
    assert internal | external == topo.edges


def test_validate_path_accepts_figure1_witness():
    topo = build_figure1().topology
    topo.validate_path(
        ["Customer", Edge("Customer", "R3"), "R3", Edge("R3", "R2"), "R2", Edge("R2", "ISP2")]
    )


@pytest.mark.parametrize(
    "path",
    [
        [],
        ["R3", Edge("R2", "ISP2")],
        [Edge("R3", "R2"), "R3"],
        ["R3", Edge("R3", "R2"), "R1"],
        ["NOPE"],
    ],
)
def test_validate_path_rejects_non_paths(path):
    topo = build_figure1().topology
    with pytest.raises((ValueError, TypeError)):
        topo.validate_path(path)


def test_config_validate_flags_missing_router_config():
    topo = Topology()
    topo.add_router("R1")
    topo.add_router("R2")
    topo.add_peering("R1", "R2")
    config = NetworkConfig(topo)
    config.add_router_config(RouterConfig("R1", 65000))
    problems = config.validate()
    assert any("R2" in p for p in problems)


def test_config_validate_flags_asn_mismatch():
    topo = Topology()
    topo.add_router("R1")
    topo.add_external("E1")
    topo.add_peering("R1", "E1")
    config = NetworkConfig(topo)
    config.set_external_asn("E1", 100)
    rc = RouterConfig("R1", 65000)
    rc.add_neighbor(NeighborConfig("E1", 999))
    config.add_router_config(rc)
    assert any("remote-as" in p for p in config.validate())


def test_import_export_identity_without_route_maps():
    config = build_figure1()
    route = Route(prefix=Prefix.parse("10.0.0.0/8"))
    # R1 -> R2 iBGP session has no route maps: identity on both directions.
    assert config.import_route(Edge("R1", "R2"), route) == route
    assert config.export_route(Edge("R1", "R2"), route) == route


def test_export_prepends_as_on_ebgp_only():
    config = build_figure1()
    route = Route(prefix=Prefix.parse("20.0.0.0/8"))
    ebgp_out = config.export_route(Edge("R2", "ISP2"), route)
    assert ebgp_out.as_path == (65000,)
    ibgp_out = config.export_route(Edge("R2", "R1"), route)
    assert ibgp_out.as_path == ()


def test_import_applies_figure1_tagging():
    config = build_figure1()
    route = Route(prefix=Prefix.parse("10.0.0.0/8"))
    imported = config.import_route(Edge("ISP1", "R1"), route)
    assert Community(100, 1) in imported.communities


def test_export_filter_drops_tagged_route():
    config = build_figure1()
    tagged = Route(
        prefix=Prefix.parse("10.0.0.0/8"), communities=frozenset({Community(100, 1)})
    )
    assert config.export_route(Edge("R2", "ISP2"), tagged) is None
    clean = Route(prefix=Prefix.parse("10.0.0.0/8"))
    assert config.export_route(Edge("R2", "ISP2"), clean) is not None


def test_originate_defaults_empty():
    config = build_figure1()
    assert config.originate(Edge("R1", "R2")) == ()


def test_router_digest_changes_with_config():
    rc1 = RouterConfig("R1", 65000)
    rc1.add_neighbor(NeighborConfig("E1", 100))
    rc2 = RouterConfig("R1", 65000)
    rc2.add_neighbor(NeighborConfig("E1", 100, import_map=RouteMap.deny_all()))
    assert rc1.digest() != rc2.digest()
    rc3 = RouterConfig("R1", 65000)
    rc3.add_neighbor(NeighborConfig("E1", 100))
    assert rc1.digest() == rc3.digest()


def test_duplicate_neighbor_rejected():
    rc = RouterConfig("R1", 65000)
    rc.add_neighbor(NeighborConfig("E1", 100))
    with pytest.raises(ValueError):
        rc.add_neighbor(NeighborConfig("E1", 100))
