"""Property tests for the canonical per-router policy digest.

The digest is the key of the incremental-reverification outcome cache and
of the transfer-output cache, so it must satisfy two directions:

* **stability** — it depends only on policy *content*: permuting neighbor
  insertion order, community-set construction order, or unrelated routers
  must not change it;
* **sensitivity** — any change to the router's route maps, originations,
  sessions, ASN, or reflector clients must change it.

The last test closes the loop: digest equality ⇒ the incremental verifier
reruns nothing.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.config import NeighborConfig, NetworkConfig, RouterConfig
from repro.bgp.policy import (
    AddCommunity,
    ClearCommunities,
    DeleteCommunity,
    Disposition,
    MatchCommunity,
    MatchLocalPrefRange,
    MatchMedRange,
    MatchNot,
    MatchPrefix,
    PrependAsPath,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    SetMed,
    canonical_policy,
    route_map_digest,
)
from repro.bgp.prefix import Prefix, PrefixRange
from repro.bgp.route import Community, Route

C1 = Community(100, 1)
C2 = Community(7, 7)
C3 = Community(9, 9)


# ---------------------------------------------------------------------------
# Strategies (mirroring tests/lang/test_transfer.py)
# ---------------------------------------------------------------------------


@st.composite
def matches(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return MatchCommunity(draw(st.sampled_from([C1, C2])))
    if kind == 1:
        base = draw(st.sampled_from(["10.0.0.0/8", "20.0.0.0/8", "0.0.0.0/0"]))
        prefix = Prefix.parse(base)
        lo = draw(st.integers(prefix.length, 32))
        hi = draw(st.integers(lo, 32))
        return MatchPrefix((PrefixRange(prefix, lo, hi),))
    if kind == 2:
        lo = draw(st.integers(0, 50))
        return MatchMedRange(lo, draw(st.integers(lo, 100)))
    if kind == 3:
        lo = draw(st.integers(0, 200))
        return MatchLocalPrefRange(lo, draw(st.integers(lo, 400)))
    return MatchNot(MatchCommunity(draw(st.sampled_from([C1, C2]))))


@st.composite
def actions(draw):
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return SetLocalPref(draw(st.integers(0, 400)))
    if kind == 1:
        return SetMed(draw(st.integers(0, 100)))
    if kind == 2:
        return AddCommunity(draw(st.sampled_from([C1, C2])))
    if kind == 3:
        return DeleteCommunity(draw(st.sampled_from([C1, C2])))
    if kind == 4:
        return ClearCommunities()
    return PrependAsPath(draw(st.sampled_from([666, 65000])), draw(st.integers(1, 2)))


@st.composite
def route_maps(draw):
    n = draw(st.integers(1, 4))
    clauses = []
    for i in range(n):
        deny = draw(st.booleans())
        clause_matches = tuple(draw(st.lists(matches(), max_size=2)))
        if deny:
            clauses.append(RouteMapClause((i + 1) * 10, Disposition.DENY, clause_matches))
        else:
            clause_actions = tuple(draw(st.lists(actions(), max_size=3)))
            clauses.append(
                RouteMapClause((i + 1) * 10, Disposition.PERMIT, clause_matches, clause_actions)
            )
    return RouteMap("RAND", tuple(clauses))


def _router(
    neighbor_order=("E1", "P1", "P2"),
    community_order=(C1, C2, C3),
    import_map=None,
    export_map=None,
    asn=65000,
    rr_clients=frozenset(),
) -> RouterConfig:
    """One router whose construction order is a parameter."""
    origin = Route(
        prefix=Prefix.parse("10.1.0.0/16"),
        communities=list(community_order),
        ghost={},
    )
    neighbors = {
        "E1": NeighborConfig(
            "E1", 65100, import_map=import_map, export_map=export_map,
            originated=(origin,),
        ),
        "P1": NeighborConfig("P1", asn),
        "P2": NeighborConfig("P2", asn),
    }
    rc = RouterConfig("R1", asn, rr_clients=rr_clients)
    for peer in neighbor_order:
        rc.add_neighbor(neighbors[peer])
    return rc


IMPORT_MAP = RouteMap(
    "IN",
    (
        RouteMapClause(10, Disposition.DENY, matches=(MatchCommunity(C2),)),
        RouteMapClause(20, actions=(AddCommunity(C1), SetLocalPref(200))),
    ),
)


# ---------------------------------------------------------------------------
# Stability
# ---------------------------------------------------------------------------


def test_digest_ignores_neighbor_insertion_order():
    rng = random.Random(7)
    reference = _router(import_map=IMPORT_MAP).digest()
    for __ in range(6):
        order = ["E1", "P1", "P2"]
        rng.shuffle(order)
        assert _router(neighbor_order=order, import_map=IMPORT_MAP).digest() == reference


def test_digest_ignores_community_set_construction_order():
    rng = random.Random(8)
    reference = _router().digest()
    for __ in range(6):
        order = [C1, C2, C3]
        rng.shuffle(order)
        assert _router(community_order=order).digest() == reference


def test_digest_ignores_unrelated_routers():
    """Config-level: editing R2 leaves R1's digest untouched."""
    from repro.bgp.topology import Topology

    def build(r2_map):
        topo = Topology()
        topo.add_router("R1")
        topo.add_router("R2")
        topo.add_peering("R1", "R2")
        config = NetworkConfig(topo)
        r1 = RouterConfig("R1", 65000)
        r1.add_neighbor(NeighborConfig("R2", 65000, import_map=IMPORT_MAP))
        r2 = RouterConfig("R2", 65000)
        r2.add_neighbor(NeighborConfig("R1", 65000, import_map=r2_map))
        config.add_router_config(r1)
        config.add_router_config(r2)
        return config

    base = build(None).policy_digests()
    edited = build(IMPORT_MAP).policy_digests()
    assert base["R1"] == edited["R1"]
    assert base["R2"] != edited["R2"]


@settings(max_examples=100, deadline=None)
@given(route_maps())
def test_digest_stable_across_rebuilds(route_map):
    """A structurally rebuilt router digests identically (any route map)."""
    rebuilt = RouteMap(route_map.name, tuple(route_map.clauses))
    assert route_map_digest(route_map) == route_map_digest(rebuilt)
    a = _router(import_map=route_map).digest()
    b = _router(neighbor_order=("P2", "E1", "P1"), import_map=rebuilt).digest()
    assert a == b


# ---------------------------------------------------------------------------
# Sensitivity
# ---------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(route_maps())
def test_digest_changes_when_a_clause_is_appended(route_map):
    extended = RouteMap(
        route_map.name,
        route_map.clauses
        + (RouteMapClause(990, actions=(SetLocalPref(7777),)),),
    )
    assert canonical_policy(route_map) != canonical_policy(extended)
    assert route_map_digest(route_map) != route_map_digest(extended)
    assert _router(import_map=route_map).digest() != _router(import_map=extended).digest()


def test_digest_changes_on_every_policy_dimension():
    reference = _router(import_map=IMPORT_MAP).digest()
    # Action constant changed deep inside a clause.
    tweaked = RouteMap(
        "IN",
        (
            IMPORT_MAP.clauses[0],
            RouteMapClause(20, actions=(AddCommunity(C1), SetLocalPref(201))),
        ),
    )
    assert _router(import_map=tweaked).digest() != reference
    # Route-map renamed (content is metadata-complete, names included).
    renamed = RouteMap("IN-V2", IMPORT_MAP.clauses)
    assert _router(import_map=renamed).digest() != reference
    # Same map moved from import to export.
    assert _router(export_map=IMPORT_MAP).digest() != reference
    # Origination, ASN, reflector clients.
    assert _router(import_map=IMPORT_MAP, community_order=(C1,)).digest() != reference
    assert _router(import_map=IMPORT_MAP, asn=65001).digest() != reference
    assert (
        _router(import_map=IMPORT_MAP, rr_clients=frozenset({"P1"})).digest()
        != reference
    )


def test_originated_ghost_order_is_canonical():
    a = Route(prefix=Prefix.parse("10.1.0.0/16"), ghost={"x": True, "y": False})
    b = Route(prefix=Prefix.parse("10.1.0.0/16"), ghost={"y": False, "x": True})
    assert canonical_policy(a) == canonical_policy(b)


# ---------------------------------------------------------------------------
# Digest equality ⇒ cache reuse
# ---------------------------------------------------------------------------


def test_digest_equality_implies_cached_check_reuse():
    """A reorder-only rebuild of the config reruns zero checks."""
    from repro.core.incremental import IncrementalVerifier
    from repro.workloads.figure1 import build_figure1
    from tests.core.conftest import no_transit_invariants, no_transit_property
    from repro.lang.ghost import GhostAttribute
    from repro.bgp.topology import Edge

    config = build_figure1()
    ghost = GhostAttribute.source_tracker(
        "FromISP1", config.topology, [Edge("ISP1", "R1")]
    )
    verifier = IncrementalVerifier(
        config, no_transit_property(), no_transit_invariants(config), ghosts=(ghost,)
    )
    verifier.verify()

    # Rebuild the same network with every router's neighbors inserted in
    # reverse order; digests must match, so nothing reruns.
    shuffled = NetworkConfig(config.topology)
    for name, rc in config.routers.items():
        copy = RouterConfig(rc.name, rc.asn, rr_clients=rc.rr_clients)
        for peer in reversed(list(rc.neighbors)):
            copy.add_neighbor(rc.neighbors[peer])
        shuffled.add_router_config(copy)
    for node, asn in config.external_asns.items():
        shuffled.set_external_asn(node, asn)
    assert shuffled.policy_digests() == config.policy_digests()

    result = verifier.reverify(shuffled)
    assert result.rerun_checks == 0
    assert result.reuse_fraction == 1.0
    assert result.report.passed
