"""Tests for the text config dialect and the JSON round-trip."""

from __future__ import annotations

import pytest

from repro.bgp.configjson import config_from_json, config_to_json
from repro.bgp.configparse import ConfigSyntaxError, parse_config
from repro.bgp.policy import Disposition, MatchNot, MatchPrefix
from repro.bgp.prefix import Prefix
from repro.bgp.route import Community, Route
from repro.bgp.topology import Edge
from repro.workloads.figure1 import build_figure1
from repro.workloads.wan import build_wan


EXAMPLE = """
# The Figure 1 network, in the text dialect.
external ISP1 as 100
external ISP2 as 200
external Customer as 300

router R1 as 65000
  neighbor ISP1 as 100
    import route-map ISP1-IN
  neighbor R2 as 65000
  neighbor R3 as 65000

router R2 as 65000
  neighbor ISP2 as 200
    export route-map ISP2-OUT
  neighbor R1 as 65000
  neighbor R3 as 65000

router R3 as 65000
  neighbor Customer as 300
    import route-map CUST-IN
    originate 8.8.0.0/16 local-pref 150 community 65000:9
  neighbor R1 as 65000
  neighbor R2 as 65000

route-map ISP1-IN
  clause 10 permit
    add community 100:1

route-map ISP2-OUT
  clause 10 deny
    match community 100:1
  clause 20 permit

route-map CUST-IN
  clause 10 permit
    match prefix 20.0.0.0/8 le 24
    clear communities
"""


def test_parse_example_topology():
    config = parse_config(EXAMPLE)
    assert config.topology.routers == {"R1", "R2", "R3"}
    assert config.topology.externals == {"ISP1", "ISP2", "Customer"}
    assert config.topology.has_edge("R1", "ISP1")
    assert config.topology.has_edge("ISP1", "R1")
    assert config.asn_of("ISP2") == 200


def test_parse_example_route_maps_behave():
    config = parse_config(EXAMPLE)
    r = Route(prefix=Prefix.parse("10.0.0.0/8"))
    imported = config.import_route(Edge("ISP1", "R1"), r)
    assert Community(100, 1) in imported.communities
    assert config.export_route(Edge("R2", "ISP2"), imported) is None

    cust = Route(prefix=Prefix.parse("20.1.0.0/16"), communities={Community(100, 1)})
    imported = config.import_route(Edge("Customer", "R3"), cust)
    assert imported is not None and imported.communities == frozenset()
    outside = Route(prefix=Prefix.parse("99.0.0.0/8"))
    assert config.import_route(Edge("Customer", "R3"), outside) is None


def test_parse_originate():
    config = parse_config(EXAMPLE)
    (originated,) = config.originate(Edge("R3", "Customer"))
    assert originated.prefix == Prefix.parse("8.8.0.0/16")
    assert originated.local_pref == 150
    assert Community(65000, 9) in originated.communities


def test_parse_match_not_and_ranges():
    text = """
    external E as 1
    router R as 2
      neighbor E as 1
        import route-map M
    route-map M
      clause 10 permit
        match not community 1:2
        match med 0 50
        match local-pref 100 200
        match as-path-contains 666
        set med 5
        prepend 2 3
    """
    config = parse_config(text)
    rm = config.import_map(Edge("E", "R"))
    clause = rm.clauses[0]
    assert any(isinstance(m, MatchNot) for m in clause.matches)
    route = Route(
        prefix=Prefix.parse("1.0.0.0/8"), med=10, local_pref=150, as_path=(666,)
    )
    out = rm.apply(route)
    assert out.med == 5
    assert out.as_path == (2, 2, 2, 666)


@pytest.mark.parametrize(
    "snippet, message_part",
    [
        ("bogus", "unknown keyword"),
        ("router R1", "expected: router NAME as ASN"),
        ("external E as 1\nexternal E2 as 2\nneighbor E as 1", "outside a router"),
        ("route-map M\nmatch community 1:1", "outside a clause"),
        ("route-map M\nclause 10 deny\nset med 5", "deny clauses"),
        ("router R as 1\nrouter R as 2", "duplicate router"),
        ("route-map M\nroute-map M", "duplicate route-map"),
    ],
)
def test_parse_errors(snippet, message_part):
    with pytest.raises(ConfigSyntaxError) as excinfo:
        parse_config(snippet)
    assert message_part in str(excinfo.value)


def test_undefined_route_map_rejected():
    text = """
    external E as 1
    router R as 2
      neighbor E as 1
        import route-map MISSING
    """
    with pytest.raises(ConfigSyntaxError) as excinfo:
        parse_config(text)
    assert "never defined" in str(excinfo.value)


def test_unknown_neighbor_rejected():
    text = """
    router R as 2
      neighbor GHOST as 1
    """
    with pytest.raises(ConfigSyntaxError):
        parse_config(text)


def test_remote_as_mismatch_rejected():
    text = """
    external E as 1
    router R as 2
      neighbor E as 99
    """
    with pytest.raises(ConfigSyntaxError):
        parse_config(text)


# ---------------------------------------------------------------------------
# JSON round-trips
# ---------------------------------------------------------------------------


def _assert_equivalent(a, b) -> None:
    assert a.topology.routers == b.topology.routers
    assert a.topology.externals == b.topology.externals
    assert a.topology.edges == b.topology.edges
    assert a.external_asns == b.external_asns
    for name in a.routers:
        ra, rb = a.routers[name], b.routers[name]
        assert ra.asn == rb.asn
        assert ra.neighbors.keys() == rb.neighbors.keys()
        for peer in ra.neighbors:
            na, nb = ra.neighbors[peer], rb.neighbors[peer]
            assert na.remote_asn == nb.remote_asn
            assert na.import_map == nb.import_map
            assert na.export_map == nb.export_map
            assert na.originated == nb.originated


def test_json_roundtrip_figure1():
    config = build_figure1()
    _assert_equivalent(config, config_from_json(config_to_json(config)))


def test_json_roundtrip_parsed_example():
    config = parse_config(EXAMPLE)
    _assert_equivalent(config, config_from_json(config_to_json(config)))


def test_json_roundtrip_wan():
    wan = build_wan(regions=2, routers_per_region=2)
    _assert_equivalent(wan.config, config_from_json(config_to_json(wan.config)))


def test_json_roundtrip_is_stable():
    config = build_figure1()
    once = config_to_json(config)
    twice = config_to_json(config_from_json(once))
    assert once == twice
