"""Tests for the extended route-map vocabulary: AS-path length, origin,
next-hop matching, and origin setting — concrete, symbolic, parsed, and
serialised."""

from __future__ import annotations

import pytest

from repro.bgp.configjson import config_from_json, config_to_json
from repro.bgp.configparse import parse_config
from repro.bgp.policy import (
    MatchAsPathLength,
    MatchNextHopIn,
    MatchOrigin,
    RouteMap,
    RouteMapClause,
    SetOrigin,
)
from repro.bgp.prefix import Prefix, parse_ipv4
from repro.bgp.route import ORIGIN_EGP, ORIGIN_IGP, ORIGIN_INCOMPLETE, Route
from repro.bgp.topology import Edge
from repro.lang.predicates import AsPathLenIn, NextHopIn, OriginIs
from repro.lang.symroute import SymbolicRoute
from repro.lang.transfer import transfer_route_map
from repro.lang.universe import AttributeUniverse
from repro.smt.solver import Model


PFX = Prefix.parse("10.0.0.0/8")
UNIVERSE = AttributeUniverse((), (100, 200), ())
EMPTY_MODEL = Model({}, {})


# ---------------------------------------------------------------------------
# Concrete semantics
# ---------------------------------------------------------------------------


def test_match_as_path_length():
    m = MatchAsPathLength(1, 2)
    assert m.matches(Route(prefix=PFX, as_path=(100,)))
    assert m.matches(Route(prefix=PFX, as_path=(100, 200)))
    assert not m.matches(Route(prefix=PFX))
    assert not m.matches(Route(prefix=PFX, as_path=(1, 2, 3)))


def test_match_origin():
    assert MatchOrigin(ORIGIN_IGP).matches(Route(prefix=PFX))
    assert not MatchOrigin(ORIGIN_EGP).matches(Route(prefix=PFX))
    assert MatchOrigin(ORIGIN_INCOMPLETE).matches(Route(prefix=PFX, origin=2))


def test_match_next_hop():
    m = MatchNextHopIn((Prefix.parse("10.0.0.0/8"),))
    assert m.matches(Route(prefix=PFX, next_hop=parse_ipv4("10.1.2.3")))
    assert not m.matches(Route(prefix=PFX, next_hop=parse_ipv4("11.0.0.1")))
    with pytest.raises(ValueError):
        MatchNextHopIn(())


def test_set_origin():
    action = SetOrigin(ORIGIN_EGP)
    assert action.apply(Route(prefix=PFX)).origin == ORIGIN_EGP
    with pytest.raises(ValueError):
        SetOrigin(5)


# ---------------------------------------------------------------------------
# Symbolic semantics agree with concrete
# ---------------------------------------------------------------------------


def _route_map_agrees(route_map: RouteMap, route: Route) -> None:
    sym = SymbolicRoute.concrete(route, UNIVERSE)
    accepted, out = transfer_route_map(route_map, sym)
    expected = route_map.apply(route)
    if expected is None:
        assert not EMPTY_MODEL.eval_bool(accepted)
        return
    assert EMPTY_MODEL.eval_bool(accepted)
    got = out.evaluate(EMPTY_MODEL)
    assert got.origin == expected.origin
    assert got.next_hop == expected.next_hop


@pytest.mark.parametrize(
    "route",
    [
        Route(prefix=PFX, as_path=(100,)),
        Route(prefix=PFX, as_path=(100, 200)),
        Route(prefix=PFX, origin=2, next_hop=parse_ipv4("10.9.9.9")),
        Route(prefix=PFX, next_hop=parse_ipv4("172.16.0.1")),
    ],
)
def test_symbolic_agreement_extended_features(route):
    route_map = RouteMap(
        "EXT",
        (
            RouteMapClause(
                10,
                matches=(
                    MatchAsPathLength(0, 2),
                    MatchNextHopIn((Prefix.parse("10.0.0.0/8"),)),
                ),
                actions=(SetOrigin(ORIGIN_EGP),),
            ),
            RouteMapClause(20, matches=(MatchOrigin(ORIGIN_INCOMPLETE),)),
        ),
    )
    _route_map_agrees(route_map, route)


def test_symbolic_as_path_length_includes_prepend():
    # After a prepend, the symbolic length reflects the increment.
    from repro.bgp.policy import PrependAsPath

    route_map = RouteMap(
        "P", (RouteMapClause(10, actions=(PrependAsPath(100, 2),)),)
    )
    sym = SymbolicRoute.concrete(Route(prefix=PFX, as_path=(200,)), UNIVERSE)
    __, out = transfer_route_map(route_map, sym)
    assert EMPTY_MODEL.eval_bv(out.as_path_len) == 3


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


def test_predicates_concrete_and_symbolic_agree():
    routes = [
        Route(prefix=PFX, as_path=(100, 200), origin=1, next_hop=parse_ipv4("10.0.0.1")),
        Route(prefix=PFX),
    ]
    preds = [
        AsPathLenIn(1, 2),
        OriginIs(1),
        NextHopIn((Prefix.parse("10.0.0.0/8"),)),
    ]
    for route in routes:
        sym = SymbolicRoute.concrete(route, UNIVERSE)
        for pred in preds:
            assert EMPTY_MODEL.eval_bool(pred.to_term(sym)) is pred.holds(route)


def test_spec_json_roundtrip_new_predicates():
    from repro.lang.specjson import predicate_from_json, predicate_to_json

    for pred in (
        AsPathLenIn(0, 3),
        OriginIs(2),
        NextHopIn((Prefix.parse("10.0.0.0/8"), Prefix.parse("192.168.0.0/16"))),
    ):
        assert predicate_from_json(predicate_to_json(pred)) == pred


# ---------------------------------------------------------------------------
# Parser and JSON config round-trip
# ---------------------------------------------------------------------------


EXTENDED_CONFIG = """
external E as 1
router R as 2
  neighbor E as 1
    import route-map EXT
route-map EXT
  clause 10 permit
    match as-path-length 0 3
    match origin igp
    match next-hop 10.0.0.0/8 192.168.0.0/16
    set origin incomplete
  clause 20 deny
"""


def test_parser_extended_vocabulary():
    config = parse_config(EXTENDED_CONFIG)
    rm = config.import_map(Edge("E", "R"))
    route = Route(prefix=PFX, next_hop=parse_ipv4("10.1.1.1"))
    out = rm.apply(route)
    assert out is not None
    assert out.origin == ORIGIN_INCOMPLETE
    # Wrong origin falls to the deny clause.
    assert rm.apply(Route(prefix=PFX, origin=1, next_hop=parse_ipv4("10.1.1.1"))) is None
    # Next hop outside the listed spaces: denied.
    assert rm.apply(Route(prefix=PFX, next_hop=parse_ipv4("8.8.8.8"))) is None


def test_parser_rejects_bad_origin_name():
    bad = EXTENDED_CONFIG.replace("match origin igp", "match origin weird")
    with pytest.raises(Exception):
        parse_config(bad)


def test_json_roundtrip_extended_config():
    config = parse_config(EXTENDED_CONFIG)
    back = config_from_json(config_to_json(config))
    assert back.import_map(Edge("E", "R")) == config.import_map(Edge("E", "R"))
