"""Tests for routes, communities, route maps, and best-path selection."""

from __future__ import annotations

import pytest

from repro.bgp.policy import (
    AddCommunity,
    ClearCommunities,
    DeleteCommunity,
    Disposition,
    MatchAll,
    MatchAny,
    MatchAsPathContains,
    MatchCommunity,
    MatchLocalPrefRange,
    MatchMedRange,
    MatchNot,
    MatchPrefix,
    PrependAsPath,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    SetMed,
)
from repro.bgp.prefix import Prefix, PrefixRange
from repro.bgp.route import Community, Route
from repro.bgp.selection import best_route, prefer


PFX = Prefix.parse("10.0.0.0/8")


def _route(**kwargs) -> Route:
    defaults = dict(prefix=PFX)
    defaults.update(kwargs)
    return Route(**defaults)


# ---------------------------------------------------------------------------
# Community / Route basics
# ---------------------------------------------------------------------------


def test_community_parse_and_roundtrip():
    c = Community.parse("100:1")
    assert (c.asn, c.value) == (100, 1)
    assert str(c) == "100:1"
    assert Community.from_int(c.as_int()) == c


def test_community_rejects_bad_values():
    with pytest.raises(ValueError):
        Community.parse("100")
    with pytest.raises(ValueError):
        Community(70000, 1)


def test_route_functional_updates_do_not_mutate():
    r = _route()
    r2 = r.add_community(Community(100, 1))
    assert Community(100, 1) in r2.communities
    assert Community(100, 1) not in r.communities
    r3 = r2.delete_community(Community(100, 1))
    assert r3.communities == frozenset()
    assert r2.with_local_pref(50).local_pref == 50
    assert r2.local_pref == 100


def test_route_ghost_attributes():
    r = _route()
    assert r.ghost_value("FromISP1") is False
    r2 = r.with_ghost("FromISP1", True)
    assert r2.ghost_value("FromISP1") is True
    assert r.ghost_value("FromISP1") is False
    with pytest.raises(TypeError):
        r2.ghost["FromISP1"] = False  # type: ignore[index]


def test_route_with_ghosts_pickles_round_trip():
    """Regression: the frozen ghost mapping's default dict-subclass pickle
    repopulated via the blocked ``__setitem__``, so any counterexample
    route carrying a ghost value could not cross a process boundary (and
    silently knocked the process backend back to serial)."""
    import pickle

    r = _route().with_ghost("FromISP1", True)
    for protocol in range(2, pickle.HIGHEST_PROTOCOL + 1):
        clone = pickle.loads(pickle.dumps(r, protocol=protocol))
        assert clone == r
        assert clone.ghost_value("FromISP1") is True
        with pytest.raises(TypeError):
            clone.ghost["FromISP1"] = False  # type: ignore[index]


def test_route_is_hashable_and_equatable():
    r1 = _route(communities=frozenset({Community(1, 2)}))
    r2 = _route(communities=frozenset({Community(1, 2)}))
    assert r1 == r2
    assert hash(r1) == hash(r2)
    assert len({r1, r2}) == 1


def test_prepend_as_path():
    r = _route(as_path=(200,))
    assert r.prepend_as(65000, 2).as_path == (65000, 65000, 200)


# ---------------------------------------------------------------------------
# Match conditions
# ---------------------------------------------------------------------------


def test_match_community():
    m = MatchCommunity(Community(100, 1))
    assert m.matches(_route(communities={Community(100, 1)}))
    assert not m.matches(_route())


def test_match_prefix_list():
    m = MatchPrefix((PrefixRange.parse("10.0.0.0/8 le 24"), PrefixRange.parse("172.16.0.0/12")))
    assert m.matches(_route(prefix=Prefix.parse("10.1.0.0/16")))
    assert m.matches(_route(prefix=Prefix.parse("172.16.0.0/12")))
    assert not m.matches(_route(prefix=Prefix.parse("192.168.0.0/16")))


def test_match_as_path_and_ranges():
    assert MatchAsPathContains(666).matches(_route(as_path=(1, 666, 2)))
    assert not MatchAsPathContains(666).matches(_route(as_path=(1, 2)))
    assert MatchMedRange(0, 10).matches(_route(med=5))
    assert not MatchMedRange(0, 10).matches(_route(med=11))
    assert MatchLocalPrefRange(100, 100).matches(_route())


def test_match_combinators():
    has_comm = MatchCommunity(Community(1, 1))
    low_med = MatchMedRange(0, 10)
    r_both = _route(communities={Community(1, 1)}, med=5)
    r_neither = _route(med=50)
    assert MatchAll((has_comm, low_med)).matches(r_both)
    assert not MatchAll((has_comm, low_med)).matches(r_neither)
    assert MatchAny((has_comm, low_med)).matches(_route(med=5))
    assert not MatchAny(()).matches(r_both)
    assert MatchAll(()).matches(r_neither)
    assert MatchNot(has_comm).matches(r_neither)


# ---------------------------------------------------------------------------
# Route maps
# ---------------------------------------------------------------------------


def test_route_map_first_match_wins():
    rm = RouteMap(
        "RM",
        (
            RouteMapClause(10, matches=(MatchMedRange(0, 10),), actions=(SetLocalPref(200),)),
            RouteMapClause(20, actions=(SetLocalPref(50),)),
        ),
    )
    assert rm.apply(_route(med=5)).local_pref == 200
    assert rm.apply(_route(med=50)).local_pref == 50


def test_route_map_implicit_deny():
    rm = RouteMap("RM", (RouteMapClause(10, matches=(MatchMedRange(0, 10),)),))
    assert rm.apply(_route(med=99)) is None


def test_route_map_explicit_deny():
    rm = RouteMap(
        "RM",
        (
            RouteMapClause(10, Disposition.DENY, matches=(MatchCommunity(Community(6, 6)),)),
            RouteMapClause(20),
        ),
    )
    assert rm.apply(_route(communities={Community(6, 6)})) is None
    assert rm.apply(_route()) is not None


def test_route_map_action_pipeline_order():
    rm = RouteMap(
        "RM",
        (
            RouteMapClause(
                10,
                actions=(
                    ClearCommunities(),
                    AddCommunity(Community(9, 9)),
                    SetMed(77),
                    PrependAsPath(65000, 1),
                ),
            ),
        ),
    )
    out = rm.apply(_route(communities={Community(1, 1)}, as_path=(200,)))
    assert out.communities == frozenset({Community(9, 9)})
    assert out.med == 77
    assert out.as_path == (65000, 200)


def test_delete_community_only_removes_target():
    rm = RouteMap("RM", (RouteMapClause(10, actions=(DeleteCommunity(Community(1, 1)),)),))
    out = rm.apply(_route(communities={Community(1, 1), Community(2, 2)}))
    assert out.communities == frozenset({Community(2, 2)})


def test_route_map_clause_ordering_enforced():
    with pytest.raises(ValueError):
        RouteMap("RM", (RouteMapClause(20), RouteMapClause(10)))
    with pytest.raises(ValueError):
        RouteMap("RM", (RouteMapClause(10), RouteMapClause(10)))


def test_deny_clause_with_actions_rejected():
    with pytest.raises(ValueError):
        RouteMapClause(10, Disposition.DENY, actions=(SetMed(1),))


def test_permit_all_and_deny_all():
    assert RouteMap.permit_all().apply(_route()) == _route()
    assert RouteMap.deny_all().apply(_route()) is None


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------


def test_prefer_local_pref_dominates():
    high = _route(local_pref=200, as_path=(1, 2, 3))
    low = _route(local_pref=100)
    assert prefer(high, low)
    assert not prefer(low, high)


def test_prefer_shorter_as_path_then_lower_med():
    short = _route(as_path=(1,))
    long = _route(as_path=(1, 2))
    assert prefer(short, long)
    med_low = _route(as_path=(1,), med=0)
    med_high = _route(as_path=(1,), med=10)
    assert prefer(med_low, med_high)


def test_best_route_deterministic_tiebreak():
    r = _route()
    assert best_route([("B", r), ("A", r)]) == ("A", r)
    assert best_route([]) is None
