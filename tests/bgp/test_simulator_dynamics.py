"""Simulator dynamics: selection churn, multiple prefixes, preferences."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.bgp.route import Community, Route
from repro.bgp.simulator import ConvergenceError, EventKind, Simulator
from repro.bgp.topology import Edge
from repro.workloads.figure1 import build_figure1
from repro.workloads.fullmesh import build_full_mesh
from repro.workloads.randomnet import build_random_network


def test_higher_local_pref_wins_across_neighbors():
    # R2 hears 99/8 from ISP2 (eBGP) and from R1 via iBGP (ISP1-learned,
    # default LP).  Give ISP2's copy a higher LP via a longer AS path on
    # ISP1's: tie-break by AS-path length (ISP2 path shorter).
    config = build_figure1()
    prefix = Prefix.parse("99.0.0.0/8")
    result = Simulator(config).run(
        {
            "ISP1": [Route(prefix=prefix, as_path=(100, 7, 8))],
            "ISP2": [Route(prefix=prefix)],
        }
    )
    selected = result.selected("R2", prefix)
    assert selected is not None
    assert selected.as_path == (200,)  # ISP2's shorter path wins


def test_selection_replaced_when_better_route_arrives():
    # In the mesh, R3 first learns E1's route via R1 (iBGP).  E3 announces
    # the same prefix directly (shorter path after import at R3): the
    # selection must switch — visible as two slct events for the prefix.
    config = build_full_mesh(3)
    prefix = Prefix.parse("99.0.0.0/8")
    result = Simulator(config).run(
        {
            "E1": [Route(prefix=prefix)],
            "E3": [Route(prefix=prefix)],
        }
    )
    selected = result.selected("R3", prefix)
    assert selected is not None
    # Direct eBGP route from E3: path [1003].
    assert selected.as_path == (1003,)


def test_multiple_prefixes_tracked_independently():
    config = build_figure1()
    p1, p2 = Prefix.parse("99.0.0.0/8"), Prefix.parse("98.0.0.0/8")
    result = Simulator(config).run(
        {"ISP1": [Route(prefix=p1)], "ISP2": [Route(prefix=p2)]}
    )
    assert result.selected("R1", p1) is not None
    assert result.selected("R2", p2) is not None
    # Each propagates to the other router over iBGP.
    assert result.selected("R2", p1) is not None
    assert result.selected("R1", p2) is not None


def test_duplicate_announcements_produce_no_duplicate_forwards():
    config = build_figure1()
    route = Route(prefix=Prefix.parse("20.1.0.0/16"))
    result = Simulator(config).run({"Customer": [route, route]})
    frwd = result.events_at(Edge("R3", "R2"), EventKind.FRWD)
    assert len(frwd) == 1


def test_rounds_bounded_on_larger_networks():
    config = build_full_mesh(8)
    routes = [Route(prefix=p) for p in Prefix.parse("99.0.0.0/8").subprefixes(10)]
    result = Simulator(config).run({"E1": routes[:4], "E5": routes[4:8]})
    assert result.rounds < 20


def test_convergence_error_on_zero_budget():
    config = build_figure1()
    with pytest.raises(ConvergenceError):
        Simulator(config).run(
            {"Customer": [Route(prefix=Prefix.parse("20.1.0.0/16"))]}, max_rounds=0
        )


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 5), st.sampled_from(["gnp", "ba", "ring"]))
def test_simulation_is_deterministic(seed, model):
    config = build_random_network(6, model=model, seed=seed)
    announcements = {
        "E1": [Route(prefix=Prefix.parse("50.0.0.0/8"))],
        "E3": [Route(prefix=Prefix.parse("50.0.0.0/8"), med=5)],
    }
    a = Simulator(config).run(announcements)
    b = Simulator(config).run(announcements)
    assert a.events == b.events
    assert a.best == b.best


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 3))
def test_failed_both_directions_isolates_segment(seed):
    # Failing both directions of every edge incident to R1 (except its own
    # external) must keep E1's routes from appearing anywhere else.
    config = build_random_network(6, model="gnp", seed=seed)
    failed = set()
    for edge in config.topology.edges:
        if "R1" in (edge.src, edge.dst) and edge != Edge("E1", "R1") and edge != Edge("R1", "E1"):
            failed.add(edge)
    result = Simulator(config, failed_edges=failed).run(
        {"E1": [Route(prefix=Prefix.parse("50.0.0.0/8"))]}
    )
    for router in config.topology.routers - {"R1"}:
        assert result.selected(router, Prefix.parse("50.0.0.0/8")) is None
