"""Tests for structural configuration diffing."""

from __future__ import annotations

from repro.bgp.config import NeighborConfig
from repro.bgp.configdiff import diff_configs
from repro.bgp.policy import RouteMap
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.workloads.figure1 import build_figure1


def test_identical_configs_diff_empty():
    diff = diff_configs(build_figure1(), build_figure1())
    assert diff.is_empty
    assert diff.summary() == "no changes"


def test_route_map_change_detected_and_named():
    old = build_figure1()
    new = build_figure1()
    new.routers["R2"].neighbors["R1"].import_map = RouteMap.deny_all()
    diff = diff_configs(old, new)
    assert diff.changed_routers == ["R2"]
    assert not diff.topology_changed
    assert any("import route-map changed" in c for c in diff.details["R2"])
    assert "changed: R2" in diff.summary()


def test_originated_route_change_detected():
    old = build_figure1()
    new = build_figure1()
    new.routers["R1"].neighbors["ISP1"].originated = (
        Route(prefix=Prefix.parse("8.8.0.0/16")),
    )
    diff = diff_configs(old, new)
    assert diff.changed_routers == ["R1"]
    assert any("originated" in c for c in diff.details["R1"])


def test_session_addition_detected():
    old = build_figure1()
    new = build_figure1()
    new.topology.add_external("ISP3")
    new.set_external_asn("ISP3", 400)
    new.topology.add_peering("R1", "ISP3")
    new.routers["R1"].add_neighbor(NeighborConfig("ISP3", 400))
    diff = diff_configs(old, new)
    assert diff.topology_changed
    assert diff.changed_routers == ["R1"]
    assert any("session to ISP3 added" in c for c in diff.details["R1"])


def test_remote_asn_change_detected():
    old = build_figure1()
    new = build_figure1()
    new.routers["R3"].neighbors["Customer"].remote_asn = 999
    diff = diff_configs(old, new)
    assert diff.changed_routers == ["R3"]
    assert any("remote-as 300 -> 999" in c for c in diff.details["R3"])


def test_diff_agrees_with_incremental_verifier_ownership():
    # The routers the diff flags are exactly the ones whose checks the
    # incremental verifier re-runs.
    from repro.bgp.topology import Edge
    from repro.core.incremental import IncrementalVerifier
    from repro.lang.ghost import GhostAttribute

    from tests.core.conftest import no_transit_invariants, no_transit_property

    old = build_figure1()
    ghost = GhostAttribute.source_tracker(
        "FromISP1", old.topology, [Edge("ISP1", "R1")]
    )
    verifier = IncrementalVerifier(
        old, no_transit_property(), no_transit_invariants(old), ghosts=(ghost,)
    )
    verifier.verify()

    new = build_figure1()
    new.routers["R2"].neighbors["R1"].import_map = RouteMap.permit_all()
    diff = diff_configs(old, new)
    assert diff.changed_routers == ["R2"]

    result = verifier.reverify(new)
    # R2 owns imports on 3 in-edges and exports on 3 out-edges.
    assert result.rerun_checks == 6
