"""Tests for IPv4 prefixes, ranges, and the prefix trie."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import (
    Prefix,
    PrefixRange,
    PrefixTrie,
    format_ipv4,
    parse_ipv4,
)


def test_parse_and_format_ipv4():
    assert parse_ipv4("10.0.0.1") == 0x0A000001
    assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF
    assert format_ipv4(0x0A000001) == "10.0.0.1"


@pytest.mark.parametrize("bad", ["10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
def test_parse_ipv4_rejects_invalid(bad):
    with pytest.raises(ValueError):
        parse_ipv4(bad)


def test_prefix_parse_and_str():
    p = Prefix.parse("10.0.0.0/8")
    assert p.address == 0x0A000000
    assert p.length == 8
    assert str(p) == "10.0.0.0/8"


def test_prefix_canonicalises_host_bits():
    p = Prefix(parse_ipv4("10.1.2.3"), 8)
    assert p == Prefix.parse("10.0.0.0/8")


def test_prefix_length_bounds():
    with pytest.raises(ValueError):
        Prefix(0, 33)
    with pytest.raises(ValueError):
        Prefix(0, -1)


def test_prefix_containment():
    p8 = Prefix.parse("10.0.0.0/8")
    p16 = Prefix.parse("10.1.0.0/16")
    other = Prefix.parse("192.168.0.0/16")
    assert p8.contains(p16)
    assert not p16.contains(p8)
    assert p8.contains(p8)
    assert not p8.contains(other)
    assert p8.overlaps(p16) and p16.overlaps(p8)
    assert not p8.overlaps(other)


def test_default_route_contains_everything():
    default = Prefix.parse("0.0.0.0/0")
    assert default.contains(Prefix.parse("203.0.113.0/24"))


def test_subprefixes():
    p = Prefix.parse("10.0.0.0/30")
    subs = list(p.subprefixes(32))
    assert len(subs) == 4
    assert subs[0] == Prefix.parse("10.0.0.0/32")
    assert subs[3] == Prefix.parse("10.0.0.3/32")
    with pytest.raises(ValueError):
        list(p.subprefixes(8))


def test_prefix_range_exact():
    r = PrefixRange.exact(Prefix.parse("10.0.0.0/8"))
    assert r.matches(Prefix.parse("10.0.0.0/8"))
    assert not r.matches(Prefix.parse("10.1.0.0/16"))


def test_prefix_range_le():
    r = PrefixRange.parse("10.0.0.0/8 le 24")
    assert r.matches(Prefix.parse("10.0.0.0/8"))
    assert r.matches(Prefix.parse("10.5.0.0/16"))
    assert r.matches(Prefix.parse("10.5.5.0/24"))
    assert not r.matches(Prefix.parse("10.5.5.5/32"))
    assert not r.matches(Prefix.parse("11.0.0.0/8"))


def test_prefix_range_ge_le():
    r = PrefixRange.parse("10.0.0.0/8 ge 16 le 24")
    assert not r.matches(Prefix.parse("10.0.0.0/8"))
    assert r.matches(Prefix.parse("10.5.0.0/16"))
    assert not r.matches(Prefix.parse("10.0.0.0/25"))


def test_prefix_range_ge_only_opens_to_32():
    r = PrefixRange.parse("10.0.0.0/8 ge 16")
    assert r.matches(Prefix.parse("10.0.0.1/32"))
    assert not r.matches(Prefix.parse("10.0.0.0/9"))


def test_prefix_range_invalid_bounds():
    with pytest.raises(ValueError):
        PrefixRange(Prefix.parse("10.0.0.0/16"), 8, 24)


def test_trie_membership_and_cover():
    trie = PrefixTrie([Prefix.parse("10.0.0.0/8"), Prefix.parse("192.168.1.0/24")])
    assert Prefix.parse("10.0.0.0/8") in trie
    assert Prefix.parse("10.0.0.0/16") not in trie
    assert trie.covers(Prefix.parse("10.20.0.0/16"))
    assert trie.covers(Prefix.parse("192.168.1.128/25"))
    assert not trie.covers(Prefix.parse("192.168.2.0/24"))
    assert not trie.covers(Prefix.parse("192.0.0.0/8"))


def test_trie_covering_lists_all_ancestors():
    trie = PrefixTrie(
        [Prefix.parse("10.0.0.0/8"), Prefix.parse("10.1.0.0/16"), Prefix.parse("0.0.0.0/0")]
    )
    found = trie.covering(Prefix.parse("10.1.2.0/24"))
    assert found == [
        Prefix.parse("0.0.0.0/0"),
        Prefix.parse("10.0.0.0/8"),
        Prefix.parse("10.1.0.0/16"),
    ]


def test_trie_iteration_and_len():
    prefixes = {Prefix.parse("10.0.0.0/8"), Prefix.parse("10.0.0.0/16")}
    trie = PrefixTrie(prefixes)
    assert len(trie) == 2
    assert set(trie) == prefixes
    trie.add(Prefix.parse("10.0.0.0/8"))  # duplicate
    assert len(trie) == 2


@st.composite
def prefixes(draw):
    length = draw(st.integers(0, 32))
    addr = draw(st.integers(0, 2**32 - 1))
    return Prefix(addr & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0), length)


@settings(max_examples=200, deadline=None)
@given(st.lists(prefixes(), max_size=30), prefixes())
def test_trie_covers_matches_linear_scan(stored, probe):
    trie = PrefixTrie(stored)
    expected = any(p.contains(probe) for p in stored)
    assert trie.covers(probe) is expected


@settings(max_examples=200, deadline=None)
@given(prefixes(), prefixes())
def test_containment_antisymmetry(a, b):
    if a.contains(b) and b.contains(a):
        assert a == b


@settings(max_examples=200, deadline=None)
@given(prefixes())
def test_parse_str_roundtrip(p):
    assert Prefix.parse(str(p)) == p
