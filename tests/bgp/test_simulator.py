"""Tests for the BGP message-passing simulator and its trace axioms."""

from __future__ import annotations

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.route import Community, Route
from repro.bgp.simulator import Event, EventKind, Simulator
from repro.bgp.topology import Edge
from repro.workloads.figure1 import build_figure1


CUST_ROUTE = Route(prefix=Prefix.parse("20.1.0.0/16"))
ISP_ROUTE = Route(prefix=Prefix.parse("99.0.0.0/8"))


def test_customer_route_reaches_isp2():
    config = build_figure1()
    sim = Simulator(config)
    result = sim.run({"Customer": [CUST_ROUTE]})
    forwarded = result.routes_forwarded_on(Edge("R2", "ISP2"))
    assert any(r.prefix == CUST_ROUTE.prefix for r in forwarded)


def test_isp1_route_never_reaches_isp2():
    config = build_figure1()
    result = Simulator(config).run({"ISP1": [ISP_ROUTE]})
    assert result.routes_forwarded_on(Edge("R2", "ISP2")) == []
    # ...but it does reach R2 itself (tagged), which selects it.
    selected = result.selected("R2", ISP_ROUTE.prefix)
    assert selected is not None
    assert Community(100, 1) in selected.communities


def test_simultaneous_announcements():
    config = build_figure1()
    result = Simulator(config).run(
        {"ISP1": [ISP_ROUTE], "Customer": [CUST_ROUTE]}
    )
    out = result.routes_forwarded_on(Edge("R2", "ISP2"))
    assert {r.prefix for r in out} == {CUST_ROUTE.prefix}


def test_external_as_prepended_on_announcement():
    config = build_figure1()
    result = Simulator(config).run({"Customer": [CUST_ROUTE]})
    selected = result.selected("R3", CUST_ROUTE.prefix)
    assert selected.as_path[0] == 300


def test_customer_prefix_filter_blocks_other_prefixes():
    config = build_figure1()
    result = Simulator(config).run({"Customer": [ISP_ROUTE]})
    assert result.selected("R3", ISP_ROUTE.prefix) is None


def test_link_failure_blocks_delivery():
    config = build_figure1()
    sim = Simulator(config, failed_edges={Edge("R3", "R2"), Edge("R3", "R1")})
    result = sim.run({"Customer": [CUST_ROUTE]})
    # R3 still selects the route, but R2 never hears about it.
    assert result.selected("R3", CUST_ROUTE.prefix) is not None
    assert result.selected("R2", CUST_ROUTE.prefix) is None
    assert result.routes_forwarded_on(Edge("R2", "ISP2")) == []


def test_failed_edge_still_records_frwd_but_no_recv():
    config = build_figure1()
    sim = Simulator(config, failed_edges={Edge("R3", "R2")})
    result = sim.run({"Customer": [CUST_ROUTE]})
    frwd = result.events_at(Edge("R3", "R2"), EventKind.FRWD)
    recv = result.events_at(Edge("R3", "R2"), EventKind.RECV)
    assert frwd and not recv


def test_ibgp_full_mesh_rule_limits_propagation():
    config = build_figure1()
    result = Simulator(config).run({"Customer": [CUST_ROUTE]})
    # R1 learns the customer route from R3 over iBGP and must not
    # re-advertise it to R2 over iBGP.
    assert result.selected("R1", CUST_ROUTE.prefix) is not None
    frwd_r1_r2 = result.routes_forwarded_on(Edge("R1", "R2"))
    assert all(r.prefix != CUST_ROUTE.prefix for r in frwd_r1_r2)


def test_ebgp_loop_prevention():
    config = build_figure1()
    looped = Route(prefix=Prefix.parse("99.0.0.0/8"), as_path=(65000, 99))
    result = Simulator(config).run({"ISP1": [looped]})
    assert result.selected("R1", looped.prefix) is None


def test_unknown_external_rejected():
    config = build_figure1()
    with pytest.raises(ValueError):
        Simulator(config).run({"NOPE": [CUST_ROUTE]})


def test_result_event_helpers():
    config = build_figure1()
    result = Simulator(config).run({"Customer": [CUST_ROUTE]})
    recvs = result.routes_received_on(Edge("Customer", "R3"))
    assert len(recvs) == 1
    slcts = result.routes_selected_at("R3")
    assert any(r.prefix == CUST_ROUTE.prefix for r in slcts)


# ---------------------------------------------------------------------------
# Trace axioms (Appendix A): the simulator's traces must be Valid.
# ---------------------------------------------------------------------------


def _check_safety_axioms(config, result) -> None:
    """Assert the Appendix A safety axioms hold for a simulated trace."""
    events = result.events
    for k, event in enumerate(events):
        if event.kind is EventKind.RECV:
            edge = event.location
            if config.topology.is_external(edge.src):
                continue
            assert any(
                e.kind is EventKind.FRWD and e.location == edge and e.route == event.route
                for e in events[:k]
            ), f"recv without earlier frwd: {event}"
        elif event.kind is EventKind.SLCT:
            router = event.location
            found = False
            for e in events[:k]:
                if e.kind is EventKind.RECV and e.location.dst == router:
                    if config.import_route(e.location, e.route) == event.route:
                        found = True
                        break
            assert found, f"slct without justifying recv+import: {event}"
        elif event.kind is EventKind.FRWD:
            edge = event.location
            if event.route in config.originate(edge):
                continue
            found = False
            for e in events[:k]:
                if e.kind is EventKind.SLCT and e.location == edge.src:
                    if config.export_route(edge, e.route) == event.route:
                        found = True
                        break
            assert found, f"frwd without justifying slct+export: {event}"


def test_simulated_trace_satisfies_safety_axioms():
    config = build_figure1()
    result = Simulator(config).run({"ISP1": [ISP_ROUTE], "Customer": [CUST_ROUTE]})
    _check_safety_axioms(config, result)


def test_simulated_trace_satisfies_safety_axioms_under_failures():
    config = build_figure1()
    sim = Simulator(config, failed_edges={Edge("R3", "R2")})
    result = sim.run({"ISP1": [ISP_ROUTE], "Customer": [CUST_ROUTE]})
    _check_safety_axioms(config, result)


def test_liveness_axiom_selected_routes_are_exported():
    config = build_figure1()
    result = Simulator(config).run({"Customer": [CUST_ROUTE]})
    # Axiom: if slct(R, r) and Export(R->N, r) accepts, then frwd occurs.
    for event in result.events:
        if event.kind is not EventKind.SLCT:
            continue
        router = event.location
        # Only the *final* selection must be exported everywhere.
        if result.best[router].get(event.route.prefix, (None, None))[1] != event.route:
            continue
        learned_from = result.best[router][event.route.prefix][0]
        for edge in config.topology.edges_from(router):
            if edge.dst == learned_from:
                continue
            if (
                not config.is_ebgp(Edge(learned_from, router))
                and not config.is_ebgp(edge)
            ):
                continue  # iBGP full-mesh rule
            exported = config.export_route(edge, event.route)
            if exported is not None:
                assert any(
                    e.kind is EventKind.FRWD
                    and e.location == edge
                    and e.route == exported
                    for e in result.events
                ), f"missing frwd on {edge} for {event.route}"
