"""Property-based round-trip tests for the JSON configuration codec."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.config import NeighborConfig, NetworkConfig, RouterConfig
from repro.bgp.configjson import config_from_json, config_to_json
from repro.bgp.policy import (
    AddCommunity,
    ClearCommunities,
    DeleteCommunity,
    Disposition,
    MatchAll,
    MatchAny,
    MatchAsPathContains,
    MatchCommunity,
    MatchLocalPrefRange,
    MatchMedRange,
    MatchNot,
    MatchPrefix,
    PrependAsPath,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
    SetMed,
    SetNextHop,
)
from repro.bgp.prefix import Prefix, PrefixRange
from repro.bgp.route import Community, Route
from repro.bgp.topology import Topology


COMMUNITIES = [Community(1, 1), Community(100, 200), Community(65535, 0)]


@st.composite
def matches(draw, depth=0):
    choices = 7 if depth < 2 else 5
    kind = draw(st.integers(0, choices - 1))
    if kind == 0:
        return MatchCommunity(draw(st.sampled_from(COMMUNITIES)))
    if kind == 1:
        base = draw(st.sampled_from(["10.0.0.0/8", "0.0.0.0/0", "192.168.0.0/16"]))
        prefix = Prefix.parse(base)
        lo = draw(st.integers(prefix.length, 32))
        hi = draw(st.integers(lo, 32))
        return MatchPrefix((PrefixRange(prefix, lo, hi),))
    if kind == 2:
        return MatchAsPathContains(draw(st.integers(1, 65535)))
    if kind == 3:
        lo = draw(st.integers(0, 100))
        return MatchMedRange(lo, draw(st.integers(lo, 200)))
    if kind == 4:
        lo = draw(st.integers(0, 100))
        return MatchLocalPrefRange(lo, draw(st.integers(lo, 400)))
    if kind == 5:
        return MatchNot(draw(matches(depth=depth + 1)))
    combinator = draw(st.sampled_from([MatchAll, MatchAny]))
    return combinator(tuple(draw(st.lists(matches(depth=depth + 1), max_size=2))))


@st.composite
def actions(draw):
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return SetLocalPref(draw(st.integers(0, 1000)))
    if kind == 1:
        return SetMed(draw(st.integers(0, 1000)))
    if kind == 2:
        return SetNextHop(draw(st.integers(0, 2**32 - 1)))
    if kind == 3:
        return AddCommunity(draw(st.sampled_from(COMMUNITIES)))
    if kind == 4:
        return DeleteCommunity(draw(st.sampled_from(COMMUNITIES)))
    if kind == 5:
        return ClearCommunities()
    return PrependAsPath(draw(st.integers(1, 65535)), draw(st.integers(1, 4)))


@st.composite
def route_maps(draw):
    n = draw(st.integers(0, 4))
    clauses = []
    for i in range(n):
        if draw(st.booleans()):
            clauses.append(
                RouteMapClause(
                    (i + 1) * 10,
                    Disposition.DENY,
                    tuple(draw(st.lists(matches(), max_size=2))),
                )
            )
        else:
            clauses.append(
                RouteMapClause(
                    (i + 1) * 10,
                    Disposition.PERMIT,
                    tuple(draw(st.lists(matches(), max_size=2))),
                    tuple(draw(st.lists(actions(), max_size=3))),
                )
            )
    return RouteMap(draw(st.sampled_from(["A", "B", "C"])), tuple(clauses))


@st.composite
def configs(draw):
    topo = Topology()
    topo.add_router("R1")
    topo.add_router("R2")
    topo.add_external("E1")
    config = NetworkConfig(topo)
    config.external_asns["E1"] = 100

    r1 = RouterConfig("R1", 65000)
    topo.add_peering("R1", "E1")
    topo.add_peering("R1", "R2")
    originated = tuple(
        Route(
            prefix=Prefix.parse("8.8.0.0/16"),
            communities=frozenset(draw(st.sets(st.sampled_from(COMMUNITIES)))),
            local_pref=draw(st.integers(0, 400)),
        )
        for __ in range(draw(st.integers(0, 2)))
    )
    r1.add_neighbor(
        NeighborConfig(
            "E1",
            100,
            import_map=draw(st.one_of(st.none(), route_maps())),
            export_map=draw(st.one_of(st.none(), route_maps())),
            originated=originated,
        )
    )
    r1.add_neighbor(NeighborConfig("R2", 65000))
    r2 = RouterConfig("R2", 65000)
    r2.add_neighbor(
        NeighborConfig("R1", 65000, import_map=draw(st.one_of(st.none(), route_maps())))
    )
    config.add_router_config(r1)
    config.add_router_config(r2)
    return config


@settings(max_examples=100, deadline=None)
@given(configs())
def test_random_configs_roundtrip_through_json(config):
    text = config_to_json(config)
    back = config_from_json(text)
    assert back.topology.edges == config.topology.edges
    for name, rc in config.routers.items():
        rc2 = back.routers[name]
        for peer, ncfg in rc.neighbors.items():
            ncfg2 = rc2.neighbors[peer]
            assert ncfg2.import_map == ncfg.import_map
            assert ncfg2.export_map == ncfg.export_map
            assert ncfg2.originated == ncfg.originated
    # Idempotence: a second round trip produces identical text.
    assert config_to_json(back) == text
