"""Unknown outcomes must be counted and displayed, not lost.

Regression: UNKNOWN outcomes (conflict budget exhausted) fail a property
but carry no counterexample, so the summaries — which used to count only
``failures`` — rendered an unknown-only failure as ``FAILED (0 checks)``.
Both report summaries and the CLI formatters must surface unknowns
distinctly.
"""

from __future__ import annotations

from repro.core.checks import CheckKind, CheckOutcome, LocalCheck
from repro.core.liveness import verify_liveness
from repro.core.report import format_liveness_report, format_safety_report
from repro.core.safety import SafetyReport, verify_safety
from repro.lang.predicates import TruePred
from repro.smt.solver import SolverStats
from repro.workloads.figure1 import build_figure1

from tests.core.conftest import (
    customer_liveness_property,
    no_transit_invariants,
    no_transit_property,
)


def _unknown_outcome(description="undecided stub check"):
    check = LocalCheck(
        kind=CheckKind.IMPLICATION,
        edge=None,
        assumption=TruePred(),
        goal=TruePred(),
        description=description,
    )
    return CheckOutcome(
        check=check, passed=False, stats=SolverStats(), unknown=True
    )


def _fig1_safety_report(config=None):
    config = config if config is not None else build_figure1()
    from repro.bgp.topology import Edge
    from repro.lang.ghost import GhostAttribute

    ghost = GhostAttribute.source_tracker(
        "FromISP1", config.topology, [Edge("ISP1", "R1")]
    )
    return verify_safety(
        config, no_transit_property(), no_transit_invariants(config), ghosts=(ghost,)
    )


def test_safety_summary_counts_unknowns_distinctly():
    report = _fig1_safety_report()
    assert report.passed
    report.outcomes.append(_unknown_outcome())
    assert not report.passed
    assert not report.failures  # no counterexample anywhere...
    assert len(report.unknowns) == 1  # ...but one undecided check
    summary = report.summary()
    assert "1 unknown" in summary
    assert "FAILED (0 checks)" not in summary


def test_safety_summary_mixes_failures_and_unknowns():
    from repro.bgp.policy import DeleteCommunity, RouteMap, RouteMapClause
    from repro.workloads.figure1 import TRANSIT_COMMUNITY

    broken = build_figure1()
    broken.routers["R2"].neighbors["R1"].import_map = RouteMap(
        "STRIP",
        (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
    )
    report = _fig1_safety_report(broken)
    assert report.failures
    report.outcomes.append(_unknown_outcome())
    summary = report.summary()
    assert f"{len(report.failures)} failed" in summary
    assert "1 unknown" in summary


def test_safety_formatter_lists_unknown_checks():
    report = _fig1_safety_report()
    report.outcomes.append(_unknown_outcome("the undecided check"))
    text = format_safety_report(report)
    assert "UNKNOWN (budget exhausted): the undecided check" in text


def test_liveness_summary_counts_unknowns_distinctly():
    config = build_figure1()
    report = verify_liveness(config, customer_liveness_property())
    assert report.passed
    report.implication_outcome.passed = False
    report.implication_outcome.unknown = True
    assert not report.passed
    assert not report.failures
    assert len(report.unknowns) == 1
    summary = report.summary()
    assert "1 unknown" in summary
    assert "FAILED (0 checks)" not in summary


def test_liveness_formatter_lists_unknown_checks():
    config = build_figure1()
    report = verify_liveness(config, customer_liveness_property())
    report.implication_outcome.passed = False
    report.implication_outcome.unknown = True
    sub = next(iter(report.interference_reports.values()))
    sub.outcomes[0].passed = False
    sub.outcomes[0].unknown = True
    text = format_liveness_report(report)
    assert text.count("UNKNOWN (budget exhausted)") == 2
    assert "FAILED (2 unknown)" in report.summary()


def test_empty_status_never_renders_zero_checks():
    """Even a degenerate report (no failures, no unknowns, not passed —
    impossible today, defensive tomorrow) must not claim '0 checks'."""
    from repro.core.safety import failure_status

    assert failure_status([], []) == "FAILED"
    assert failure_status([object()], []) == "FAILED (1 failed)"
    assert failure_status([], [object()]) == "FAILED (1 unknown)"
    assert failure_status([object()], [object(), object()]) == (
        "FAILED (1 failed, 2 unknown)"
    )
