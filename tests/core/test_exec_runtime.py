"""Unit tests for the ``repro.core.exec`` runtime (PR 9).

Four clusters:

* ``resolve_jobs("auto")`` source preference — process CPU count, then
  the affinity mask, then ``os.cpu_count()`` — pinned per source by
  monkeypatching;
* :class:`CheckPlan` validation (duplicate keys/stages, undeclared
  stages, dependency cycles) and implicit stage derivation;
* :class:`Scheduler` round structure — pipelined stages batch together,
  barriered stages wait, and flat outcomes follow *plan* order no matter
  what order the rounds executed groups in;
* serial-fallback degradation — the :class:`RuntimeWarning` fires once
  per :class:`ExecutionContext` while the :class:`DegradationReport`
  carries the full per-batch event count.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.bgp.topology import Edge
from repro.core.checks import generate_safety_checks
from repro.core.exec import (
    CheckGroup,
    CheckPlan,
    ExecutionContext,
    Scheduler,
    Stage,
    WorkerPool,
    resolve_jobs,
)
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.report import DegradationReport
from repro.core.safety import build_universe, run_checks
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.workloads.fullmesh import TRANSIT_COMMUNITY, build_full_mesh


def _fullmesh_problem(n: int):
    config = build_full_mesh(n)
    ghost = GhostAttribute.source_tracker("FromE1", config.topology, [Edge("E1", "R1")])
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    universe = build_universe(config, invariants, [prop.predicate], (ghost,))
    checks = generate_safety_checks(config, invariants, prop.location, prop.predicate)
    return config, ghost, universe, checks


def _fingerprint(outcome):
    return (str(outcome.check), outcome.passed, outcome.unknown)


# -- resolve_jobs("auto") source preference ----------------------------


def test_auto_prefers_process_cpu_count(monkeypatch):
    monkeypatch.setattr(os, "process_cpu_count", lambda: 3, raising=False)
    assert resolve_jobs("auto") == 3


def test_auto_falls_back_to_affinity_mask(monkeypatch):
    monkeypatch.delattr(os, "process_cpu_count", raising=False)
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
    assert resolve_jobs("auto") == 2


def test_auto_falls_back_to_cpu_count(monkeypatch):
    monkeypatch.delattr(os, "process_cpu_count", raising=False)
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 5)
    assert resolve_jobs("auto") == 5


def test_auto_skips_empty_or_failing_sources(monkeypatch):
    # A None process count (3.13 on exotic platforms) and an affinity
    # probe raising OSError both fall through; a None cpu_count lands on 1.
    monkeypatch.setattr(os, "process_cpu_count", lambda: None, raising=False)

    def _no_affinity(pid):
        raise OSError("affinity not supported here")

    monkeypatch.setattr(os, "sched_getaffinity", _no_affinity, raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert resolve_jobs("auto") == 1


# -- CheckPlan validation ----------------------------------------------


def _groups(checks, *specs):
    """Build groups from (key, slice, stage) specs over ``checks``."""
    return tuple(
        CheckGroup(key, tuple(checks[sl]), stage) for key, sl, stage in specs
    )


def test_plan_rejects_duplicate_group_keys():
    __, __, __, checks = _fullmesh_problem(3)
    with pytest.raises(ValueError, match="duplicate group keys"):
        CheckPlan(
            groups=_groups(
                checks, (("a",), slice(0, 1), "run"), (("a",), slice(1, 2), "run")
            )
        )


def test_plan_rejects_duplicate_stage_names():
    __, __, __, checks = _fullmesh_problem(3)
    with pytest.raises(ValueError, match="duplicate stage names"):
        CheckPlan(
            groups=_groups(checks, (("a",), slice(0, 1), "s")),
            stages=(Stage("s"), Stage("s")),
        )


def test_plan_rejects_group_in_undeclared_stage():
    __, __, __, checks = _fullmesh_problem(3)
    with pytest.raises(ValueError, match="undeclared stage"):
        CheckPlan(
            groups=_groups(checks, (("a",), slice(0, 1), "ghost-stage")),
            stages=(Stage("real"),),
        )


def test_plan_rejects_dependency_on_undeclared_stage():
    with pytest.raises(ValueError, match="undeclared stage"):
        CheckPlan(groups=(), stages=(Stage("a", after=("missing",)),))


def test_plan_rejects_stage_cycles():
    with pytest.raises(ValueError, match="cycle"):
        CheckPlan(
            groups=(),
            stages=(Stage("a", after=("b",)), Stage("b", after=("a",))),
        )


def test_plan_derives_implicit_stages_in_appearance_order():
    __, __, __, checks = _fullmesh_problem(3)
    plan = CheckPlan(
        groups=_groups(
            checks,
            (("x",), slice(0, 1), "late"),
            (("y",), slice(1, 2), "early"),
            (("z",), slice(2, 3), "late"),
        )
    )
    assert [stage.name for stage in plan.stages] == ["late", "early"]
    assert all(stage.after == () for stage in plan.stages)
    assert plan.num_checks == 3


# -- Scheduler round structure -----------------------------------------


def _batched_keys(context, plan, config, universe, ghost):
    """Run ``plan`` and return each dispatch round's group keys."""
    scheduler = Scheduler(context)
    rounds = []
    original = Scheduler._dispatch

    def spy(self, batch, degradation):
        rounds.append([group.key for group in batch.groups])
        return original(self, batch, degradation)

    Scheduler._dispatch = spy
    try:
        result = scheduler.run(plan, config, universe, (ghost,))
    finally:
        Scheduler._dispatch = original
    return rounds, result


def test_independent_stages_pipeline_into_one_batch():
    config, ghost, universe, checks = _fullmesh_problem(3)
    plan = CheckPlan(
        groups=_groups(
            checks,
            (("a",), slice(0, 2), "first"),
            (("b",), slice(2, 3), "second"),
            (("c",), slice(3, None), "third"),
        ),
        stages=(
            Stage("first"),
            Stage("second", after=("first",)),
            Stage("third"),  # independent: rides along with "first"
        ),
    )
    rounds, result = _batched_keys(context_serial(), plan, config, universe, ghost)
    assert rounds == [[("a",), ("c",)], [("b",)]]
    # Flat outcomes follow *plan* order even though ("c",) ran first.
    reference = [check.run(config, universe, (ghost,)) for check in checks]
    assert [_fingerprint(o) for o in result.outcomes] == [
        _fingerprint(o) for o in reference
    ]


def test_barriered_stages_run_in_separate_batches():
    config, ghost, universe, checks = _fullmesh_problem(3)
    plan = CheckPlan(
        groups=_groups(
            checks,
            (("a",), slice(0, 2), "first"),
            (("b",), slice(2, 3), "second"),
            (("c",), slice(3, None), "third"),
        ),
        stages=(
            Stage("first"),
            Stage("second", after=("first",)),
            Stage("third", after=("second",)),
        ),
    )
    rounds, result = _batched_keys(context_serial(), plan, config, universe, ghost)
    assert rounds == [[("a",)], [("b",)], [("c",)]]
    assert len(result.outcomes) == len(checks)
    assert result.group(("a",)) == result.outcomes[:2]


def context_serial() -> ExecutionContext:
    return ExecutionContext(None, "serial", None, None, None, autopool=False)


def test_empty_plan_and_empty_groups():
    config, ghost, universe, __ = _fullmesh_problem(3)
    empty = Scheduler(context_serial()).run(
        CheckPlan(groups=()), config, universe, (ghost,)
    )
    assert empty.outcomes == []
    one_empty = Scheduler(context_serial()).run(
        CheckPlan(groups=(CheckGroup(("none",), ()),)), config, universe, (ghost,)
    )
    assert one_empty.group(("none",)) == []
    assert one_empty.outcomes == []


def test_context_validates_eagerly():
    with pytest.raises(ValueError, match="unknown backend"):
        ExecutionContext(None, "gpu", None, None, None)
    with pytest.raises(ValueError, match="parallel must be >= 0"):
        ExecutionContext(-2, "auto", None, None, None)


def test_env_override_applies_only_to_bare_auto_contexts(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "thread")
    assert ExecutionContext(None, "auto", None, None, None).resolved_backend() == (
        "thread"
    )
    # Explicit backends and contexts holding a worker pool are exempt.
    assert ExecutionContext(None, "serial", None, None, None).resolved_backend() == (
        "serial"
    )
    pool = WorkerPool(1)  # never started: no processes are forked
    try:
        assert (
            ExecutionContext(None, "auto", None, None, pool).resolved_backend()
            == "auto"
        )
    finally:
        pool.close()
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    assert ExecutionContext(None, "auto", None, None, None).resolved_backend() == (
        "auto"
    )


# -- serial-fallback warning dedup (satellite: warn once per context) --


def test_fallback_warns_once_per_context_but_counts_every_batch():
    config, ghost, universe, checks = _fullmesh_problem(3)
    pool = WorkerPool(2)
    pool.close()  # unusable: every persistent dispatch degrades
    context = ExecutionContext(2, "process", None, None, pool)
    degradation = DegradationReport()
    # Two barriered stages force two dispatch batches through the dead pool.
    plan = CheckPlan(
        groups=_groups(
            checks, (("a",), slice(0, 1), "first"), (("b",), slice(1, 2), "second")
        ),
        stages=(Stage("first"), Stage("second", after=("first",))),
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = Scheduler(context).run(
            plan, config, universe, (ghost,), degradation=degradation
        )
    fallback_warnings = [
        w for w in caught if issubclass(w.category, RuntimeWarning)
    ]
    assert len(fallback_warnings) == 1, "one warning per context, not per batch"
    assert "degraded to the serial path" in str(fallback_warnings[0].message)
    # ...but the report still carries the full event count.
    assert degradation.serial_fallbacks == 2
    assert len(degradation.reasons) == 2
    assert all(o.passed for o in result.outcomes)


def test_run_checks_still_warns_per_call():
    # Each run_checks call builds a fresh context, so the legacy
    # one-warning-per-call behavior is preserved for direct callers.
    config, ghost, universe, checks = _fullmesh_problem(3)
    pool = WorkerPool(2)
    pool.close()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for __ in range(2):
            run_checks(
                checks[:1],
                config,
                universe,
                (ghost,),
                parallel=2,
                backend="process",
                workers=pool,
            )
    fallback_warnings = [
        w for w in caught if issubclass(w.category, RuntimeWarning)
    ]
    assert len(fallback_warnings) == 2


def test_empty_batches_never_record_fallbacks():
    # The legacy pool returned [] for an empty check list before ever
    # starting workers; the scheduler must preserve that — no warning, no
    # degradation event, even when the pool is unusable.
    config, ghost, universe, __ = _fullmesh_problem(3)
    pool = WorkerPool(2)
    pool.close()
    degradation = DegradationReport()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        outcomes = run_checks(
            [],
            config,
            universe,
            (ghost,),
            parallel=2,
            backend="process",
            workers=pool,
            degradation=degradation,
        )
    assert outcomes == []
    assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert degradation.serial_fallbacks == 0
