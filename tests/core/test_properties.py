"""Tests for property specifications and invariant maps."""

from __future__ import annotations

import pytest

from repro.bgp.topology import Edge
from repro.core.properties import InvariantMap, LivenessProperty, SafetyProperty
from repro.lang.predicates import FalsePred, TruePred
from repro.workloads.figure1 import build_figure1


def test_invariant_default_and_override():
    config = build_figure1()
    inv = InvariantMap(config.topology, default=FalsePred())
    assert isinstance(inv.get("R1"), FalsePred)
    inv.set("R1", TruePred())
    assert isinstance(inv.get("R1"), TruePred)
    assert isinstance(inv.get("R2"), FalsePred)
    assert inv.overridden_locations() == ("R1",)


def test_invariant_external_source_edges_pinned_true():
    config = build_figure1()
    inv = InvariantMap(config.topology, default=FalsePred())
    # Reads return True regardless of the default.
    assert isinstance(inv.get(Edge("ISP1", "R1")), TruePred)
    # Writes are rejected: §4.1 requires I = Routes there.
    with pytest.raises(ValueError):
        inv.set(Edge("ISP1", "R1"), FalsePred())


def test_invariant_edges_to_externals_are_settable():
    config = build_figure1()
    inv = InvariantMap(config.topology)
    inv.set_edge("R2", "ISP2", FalsePred())
    assert isinstance(inv.get(Edge("R2", "ISP2")), FalsePred)


def test_invariant_rejects_unknown_locations():
    config = build_figure1()
    inv = InvariantMap(config.topology)
    with pytest.raises(KeyError):
        inv.set("NOPE", TruePred())
    with pytest.raises(KeyError):
        inv.set(Edge("R1", "NOPE"), TruePred())
    with pytest.raises(KeyError):
        inv.set("ISP1", TruePred())  # externals are not routers
    with pytest.raises(TypeError):
        inv.set(42, TruePred())  # type: ignore[arg-type]


def test_invariant_copy_is_independent():
    config = build_figure1()
    inv = InvariantMap(config.topology, default=TruePred())
    clone = inv.copy()
    clone.set("R1", FalsePred())
    assert isinstance(inv.get("R1"), TruePred)


def test_invariant_set_many():
    config = build_figure1()
    inv = InvariantMap(config.topology)
    inv.set_many(["R1", "R2"], FalsePred())
    assert isinstance(inv.get("R1"), FalsePred)
    assert isinstance(inv.get("R2"), FalsePred)


def test_liveness_property_shape_validation():
    with pytest.raises(ValueError):
        LivenessProperty(
            location="R2",
            predicate=TruePred(),
            path=("R1",),
            constraints=(TruePred(), TruePred()),
        )
    with pytest.raises(ValueError):
        LivenessProperty(
            location="R2",
            predicate=TruePred(),
            path=("R1",),
            constraints=(TruePred(),),
        )  # path must end at the property location
    with pytest.raises(ValueError):
        LivenessProperty(
            location="R2", predicate=TruePred(), path=(), constraints=()
        )


def test_liveness_property_topological_validation():
    config = build_figure1()
    prop = LivenessProperty(
        location="R2",
        predicate=TruePred(),
        path=("R1", Edge("R1", "ISP1"), "R2"),  # ISP1 edge doesn't lead to R2
        constraints=(TruePred(),) * 3,
    )
    with pytest.raises(ValueError):
        prop.validate_against(config.topology)


def test_property_str_rendering():
    prop = SafetyProperty("R1", TruePred(), name="demo")
    assert "demo" in str(prop)
    assert "R1" in str(prop)
