"""Wall-clock deadline tests: hung checks, run budgets, and exit codes.

A verification run must never hang on one pathological check: with
``deadline_s`` a hung check comes back UNKNOWN with reason ``timeout``
inside the budget, and with a wall budget the run returns partial
results (remaining checks UNKNOWN with reason ``wall-budget``) instead
of running forever.  The hang is injected, so these tests are fast and
deterministic — no real runaway SAT search needed.
"""

from __future__ import annotations

import time

import pytest

from repro.bgp.topology import Edge
from repro.cli import EXIT_DEGRADED, main
from repro.core.checks import generate_safety_checks
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.safety import build_universe, run_checks, verify_safety
from repro.core.workspace import Workspace
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.smt.solver import Solver
from repro.smt.terms import BoolVar
from repro.testing import faults
from repro.testing.faults import FaultPlan
from repro.workloads.fullmesh import TRANSIT_COMMUNITY, build_full_mesh


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def _fullmesh_problem(n: int):
    config = build_full_mesh(n)
    ghost = GhostAttribute.source_tracker("FromE1", config.topology, [Edge("E1", "R1")])
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    return config, ghost, prop, invariants


# ---------------------------------------------------------------------------
# Solver-level deadlines
# ---------------------------------------------------------------------------


def test_solver_expired_deadline_returns_unknown_with_timeout_reason():
    solver = Solver()
    x = BoolVar("x")
    solver.add(x)
    result = solver.check(deadline_s=-1.0)
    assert result.name == "UNKNOWN"
    assert solver.stats.unknown_reason == "timeout"
    # The session is not poisoned: the same solver decides normally next.
    assert solver.check().name == "SAT"
    assert solver.stats.unknown_reason is None


# ---------------------------------------------------------------------------
# Hung checks under a per-check deadline
# ---------------------------------------------------------------------------


def test_hung_check_times_out_within_budget_and_rest_completes():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    universe = build_universe(config, invariants, [prop.predicate], (ghost,))
    checks = generate_safety_checks(config, invariants, prop.location, prop.predicate)
    victim = str(checks[0])
    faults.install(FaultPlan(hang_check_match=victim))

    start = time.monotonic()
    outcomes = run_checks(checks, config, universe, (ghost,), deadline_s=0.2)
    elapsed = time.monotonic() - start

    # The hung check came back UNKNOWN with the precise reason, well
    # inside its budget (the injected hang sleeps only to the deadline).
    assert elapsed < 5.0
    hung = outcomes[0]
    assert hung.unknown
    assert hung.unknown_reason == "timeout"
    # Every other check was unaffected.
    assert all(o.passed for o in outcomes[1:])


def test_verify_safety_deadline_produces_timeout_unknowns():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    faults.install(FaultPlan(hang_check_match="import check at R3"))
    report = verify_safety(config, prop, invariants, ghosts=(ghost,), deadline_s=0.2)
    assert not report.passed
    assert report.unknowns
    assert report.unknown_reason_counts.get("timeout", 0) >= 1
    assert not report.failures  # undecided, not refuted


# ---------------------------------------------------------------------------
# Wall budget: partial results, never a hang
# ---------------------------------------------------------------------------


def test_exhausted_wall_budget_returns_partial_results():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    # Delay every check slightly so a tiny budget expires mid-run.
    faults.install(FaultPlan(delay_check_s=0.05))
    report = verify_safety(
        config, prop, invariants, ghosts=(ghost,), wall_budget_s=0.12
    )
    reasons = report.unknown_reason_counts
    assert reasons.get("wall-budget", 0) >= 1
    # Partial, not empty: the checks that ran before expiry are decided.
    decided = [o for o in report.iter_outcomes() if not o.unknown]
    assert decided
    assert all(o.passed for o in decided)


def test_workspace_wall_budget_spans_a_run():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    ws = Workspace(config, ghosts=(ghost,), wall_budget_s=1e-6)
    with ws:
        report = ws.verify(prop, invariants)
    assert not report.passed
    assert set(report.unknown_reason_counts) == {"wall-budget"}


def test_workspace_pinned_run_deadline_wins_over_budget():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    ws = Workspace(config, ghosts=(ghost,), wall_budget_s=1e-6)
    # An externally pinned (generous) deadline overrides the per-run
    # budget — the CLI uses this to span one budget over many properties.
    ws.set_run_deadline(time.monotonic() + 60.0)
    with ws:
        report = ws.verify(prop, invariants)
    assert report.passed


# ---------------------------------------------------------------------------
# CLI: flags parse, degraded runs exit EXIT_DEGRADED
# ---------------------------------------------------------------------------

CONFIG_TEXT = """
external ISP1 as 100
external ISP2 as 200
router R1 as 65000
  neighbor ISP1 as 100
    import route-map ISP1-IN
  neighbor R2 as 65000
router R2 as 65000
  neighbor ISP2 as 200
    export route-map ISP2-OUT
  neighbor R1 as 65000
route-map ISP1-IN
  clause 10 permit
    add community 100:1
route-map ISP2-OUT
  clause 10 deny
    match community 100:1
  clause 20 permit
"""

SPEC_JSON = """{
  "ghosts": [{"name": "FromISP1", "kind": "source", "sources": ["ISP1->R1"]}],
  "safety": [{
    "name": "no-transit",
    "location": "R2->ISP2",
    "predicate": {"kind": "not", "inner": {"kind": "ghost", "name": "FromISP1"}},
    "invariants": {
      "default": {
        "kind": "implies",
        "antecedent": {"kind": "ghost", "name": "FromISP1"},
        "consequent": {"kind": "community", "community": "100:1"}
      },
      "overrides": {
        "R2->ISP2": {"kind": "not", "inner": {"kind": "ghost", "name": "FromISP1"}}
      }
    }
  }]
}"""


@pytest.fixture
def cli_inputs(tmp_path):
    config = tmp_path / "network.cfg"
    config.write_text(CONFIG_TEXT)
    spec = tmp_path / "spec.json"
    spec.write_text(SPEC_JSON)
    return str(config), str(spec)


def test_cli_passes_cleanly_with_generous_deadlines(cli_inputs):
    config, spec = cli_inputs
    assert main(
        ["verify", config, spec, "--deadline", "30", "--wall-budget", "300"]
    ) == 0


def test_cli_exhausted_wall_budget_exits_degraded(cli_inputs, capsys):
    config, spec = cli_inputs
    code = main(["verify", config, spec, "--wall-budget", "0.000001"])
    assert code == EXIT_DEGRADED
    out = capsys.readouterr().out
    assert "UNKNOWN (wall budget exhausted)" in out


def test_cli_hung_check_under_deadline_exits_degraded(cli_inputs, capsys):
    config, spec = cli_inputs
    faults.install(FaultPlan(hang_check_match="import check at R1"))
    start = time.monotonic()
    code = main(["verify", config, spec, "--deadline", "0.2"])
    assert time.monotonic() - start < 10.0
    assert code == EXIT_DEGRADED
    assert "UNKNOWN (deadline exceeded)" in capsys.readouterr().out


def test_cli_rejects_nonpositive_durations(cli_inputs):
    config, spec = cli_inputs
    with pytest.raises(SystemExit):
        main(["verify", config, spec, "--deadline", "0"])
    with pytest.raises(SystemExit):
        main(["verify", config, spec, "--wall-budget", "-5"])
