"""Tests for the persistent process-backend :class:`WorkerPool`.

The PR-3 claim mirrors the serial ``SessionPool`` one at the process
level: a pool of long-lived worker processes, each holding owner-keyed
sessions and cached problem contexts, discharges repeated ``run_checks``
calls without re-encoding — the per-owner encoding growth counters are the
witnesses.  Outcomes must be indistinguishable from the serial path, the
context must be shipped once per worker per problem, and a dead pool must
degrade to the serial fallback.
"""

from __future__ import annotations

import pytest

from repro.bgp.policy import DeleteCommunity, RouteMap, RouteMapClause
from repro.bgp.topology import Edge
from repro.core.checks import generate_safety_checks
from repro.core.incremental import IncrementalVerifier
from repro.core.parallel import WorkerPool
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.safety import build_universe, run_checks, verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.workloads.fullmesh import TRANSIT_COMMUNITY, build_full_mesh


def _fullmesh_problem(n: int):
    config = build_full_mesh(n)
    ghost = GhostAttribute.source_tracker("FromE1", config.topology, [Edge("E1", "R1")])
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    return config, ghost, prop, invariants


def _pieces(config, ghost, prop, invariants):
    universe = build_universe(config, invariants, [prop.predicate], (ghost,))
    checks = generate_safety_checks(config, invariants, prop.location, prop.predicate)
    return universe, checks


def _fingerprint(outcome):
    failure = outcome.failure
    return (
        str(outcome.check),
        outcome.passed,
        outcome.unknown,
        None
        if failure is None
        else (str(failure.input_route), str(failure.output_route), failure.rejected),
    )


def _pool_or_skip(pool: WorkerPool, outcomes):
    if outcomes is None:
        pool.close()
        pytest.skip("process pools unavailable in this environment")
    return outcomes


def test_worker_pool_matches_serial_outcomes():
    config, ghost, prop, invariants = _fullmesh_problem(5)
    universe, checks = _pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,))
    with WorkerPool(2) as pool:
        pooled = _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        assert [_fingerprint(o) for o in pooled] == [_fingerprint(o) for o in serial]


def test_worker_pool_ships_counterexamples_back():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    strip = RouteMap(
        "STRIP", (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),)
    )
    config.routers["R3"].neighbors["R1"].import_map = strip
    universe, checks = _pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,))
    with WorkerPool(2) as pool:
        pooled = _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        assert [_fingerprint(o) for o in pooled] == [_fingerprint(o) for o in serial]
        assert any(o.failure is not None for o in pooled)


def test_worker_pool_persists_encodings_across_runs():
    config, ghost, prop, invariants = _fullmesh_problem(5)
    universe, checks = _pieces(config, ghost, prop, invariants)
    with WorkerPool(2) as pool:
        _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        # First run builds encodings and ships the context to each worker
        # that received a chunk — at most once per worker.
        assert sum(v for v, __ in pool.last_encoding_growth.values()) > 0
        assert 0 < pool.contexts_shipped <= pool.jobs
        shipped_once = pool.contexts_shipped

        second = pool.run(checks, config, universe, (ghost,))
        assert second is not None
        # Owner affinity + persistent sessions: the rerun re-solves against
        # the existing clause databases and encodes nothing new anywhere.
        assert all(g == (0, 0) for g in pool.last_encoding_growth.values()), (
            pool.last_encoding_growth
        )
        # Same problem, same workers: no context re-shipment either.
        assert pool.contexts_shipped == shipped_once


def test_worker_pool_reships_context_for_edited_config():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    universe, checks = _pieces(config, ghost, prop, invariants)
    with WorkerPool(2) as pool:
        _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        shipped_before = pool.contexts_shipped

        edited, ghost2, prop2, invariants2 = _fullmesh_problem(4)
        strip = RouteMap(
            "STRIP",
            (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
        )
        edited.routers["R3"].neighbors["R1"].import_map = strip
        universe2, checks2 = _pieces(edited, ghost2, prop2, invariants2)
        serial = run_checks(checks2, edited, universe2, (ghost2,))
        pooled = pool.run(checks2, edited, universe2, (ghost2,))
        assert pooled is not None
        # The edit changes the policy digests, so this is a new context.
        assert pool.contexts_shipped > shipped_before
        assert [_fingerprint(o) for o in pooled] == [_fingerprint(o) for o in serial]


def test_run_checks_uses_worker_pool_and_falls_back_when_closed():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    universe, checks = _pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,))

    pool = WorkerPool(2)
    try:
        via_pool = run_checks(checks, config, universe, (ghost,), workers=pool)
        assert [_fingerprint(o) for o in via_pool] == [_fingerprint(o) for o in serial]
    finally:
        pool.close()
    # A closed pool refuses work; run_checks silently takes the serial path.
    after_close = run_checks(checks, config, universe, (ghost,), workers=pool)
    assert [_fingerprint(o) for o in after_close] == [_fingerprint(o) for o in serial]


def test_verify_safety_with_persistent_workers():
    config, ghost, prop, invariants = _fullmesh_problem(5)
    with WorkerPool(2) as pool:
        first = verify_safety(
            config, prop, invariants, ghosts=(ghost,), workers=pool
        )
        assert first.passed
        if pool.chunks_run == 0:
            pytest.skip("process pools unavailable in this environment")
        second = verify_safety(
            config, prop, invariants, ghosts=(ghost,), workers=pool
        )
        assert second.passed
        assert all(g == (0, 0) for g in pool.last_encoding_growth.values())


def test_incremental_verifier_keeps_workers_across_reverify():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    v = IncrementalVerifier(
        config, prop, invariants, ghosts=(ghost,), parallel=2, backend="process"
    )
    try:
        assert v.verify().report.passed
        pool = v._worker_pool
        if pool is None or pool.chunks_run == 0:
            pytest.skip("process pools unavailable in this environment")

        edited, __, ___, ____ = _fullmesh_problem(4)
        strip = RouteMap(
            "STRIP",
            (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
        )
        edited.routers["R3"].neighbors["R1"].import_map = strip
        result = v.reverify(edited)
        assert not result.report.passed
        # Same WorkerPool object across verify/reverify — workers survived.
        assert v._worker_pool is pool
        assert {f.blamed_router for f in result.report.failures} == {"R3"}
    finally:
        v.close()
