"""Tests for the persistent process-backend :class:`WorkerPool`.

The PR-3 claim mirrors the serial ``SessionPool`` one at the process
level: a pool of long-lived worker processes, each holding owner-keyed
sessions and cached problem contexts, discharges repeated ``run_checks``
calls without re-encoding — the per-owner encoding growth counters are the
witnesses.  Outcomes must be indistinguishable from the serial path, the
context must be shipped once per worker per problem, and a dead pool must
degrade to the serial fallback.
"""

from __future__ import annotations

import pytest

from repro.bgp.policy import DeleteCommunity, RouteMap, RouteMapClause
from repro.bgp.topology import Edge
from repro.core.checks import generate_safety_checks
from repro.core.incremental import IncrementalVerifier
from repro.core.parallel import WorkerPool
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.safety import build_universe, run_checks, verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.workloads.fullmesh import TRANSIT_COMMUNITY, build_full_mesh


def _fullmesh_problem(n: int):
    config = build_full_mesh(n)
    ghost = GhostAttribute.source_tracker("FromE1", config.topology, [Edge("E1", "R1")])
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    return config, ghost, prop, invariants


def _pieces(config, ghost, prop, invariants):
    universe = build_universe(config, invariants, [prop.predicate], (ghost,))
    checks = generate_safety_checks(config, invariants, prop.location, prop.predicate)
    return universe, checks


def _fingerprint(outcome):
    failure = outcome.failure
    return (
        str(outcome.check),
        outcome.passed,
        outcome.unknown,
        None
        if failure is None
        else (str(failure.input_route), str(failure.output_route), failure.rejected),
    )


def _pool_or_skip(pool: WorkerPool, outcomes):
    if outcomes is None:
        pool.close()
        pytest.skip("process pools unavailable in this environment")
    return outcomes


def test_worker_pool_matches_serial_outcomes():
    config, ghost, prop, invariants = _fullmesh_problem(5)
    universe, checks = _pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,))
    with WorkerPool(2) as pool:
        pooled = _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        assert [_fingerprint(o) for o in pooled] == [_fingerprint(o) for o in serial]


def test_worker_pool_ships_counterexamples_back():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    strip = RouteMap(
        "STRIP", (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),)
    )
    config.routers["R3"].neighbors["R1"].import_map = strip
    universe, checks = _pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,))
    with WorkerPool(2) as pool:
        pooled = _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        assert [_fingerprint(o) for o in pooled] == [_fingerprint(o) for o in serial]
        assert any(o.failure is not None for o in pooled)


def test_worker_pool_persists_encodings_across_runs():
    config, ghost, prop, invariants = _fullmesh_problem(5)
    universe, checks = _pieces(config, ghost, prop, invariants)
    with WorkerPool(2) as pool:
        _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        # First run builds encodings and ships the context to each worker
        # that received a chunk — at most once per worker.
        assert sum(v for v, __ in pool.last_encoding_growth.values()) > 0
        assert 0 < pool.contexts_shipped <= pool.jobs
        shipped_once = pool.contexts_shipped

        second = pool.run(checks, config, universe, (ghost,))
        assert second is not None
        # Owner affinity + persistent sessions: the rerun re-solves against
        # the existing clause databases and encodes nothing new anywhere.
        assert all(g == (0, 0) for g in pool.last_encoding_growth.values()), (
            pool.last_encoding_growth
        )
        # Same problem, same workers: no context re-shipment either.
        assert pool.contexts_shipped == shipped_once


def test_worker_pool_reships_context_for_edited_config():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    universe, checks = _pieces(config, ghost, prop, invariants)
    with WorkerPool(2) as pool:
        _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        shipped_before = pool.contexts_shipped

        edited, ghost2, prop2, invariants2 = _fullmesh_problem(4)
        strip = RouteMap(
            "STRIP",
            (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
        )
        edited.routers["R3"].neighbors["R1"].import_map = strip
        universe2, checks2 = _pieces(edited, ghost2, prop2, invariants2)
        serial = run_checks(checks2, edited, universe2, (ghost2,))
        pooled = pool.run(checks2, edited, universe2, (ghost2,))
        assert pooled is not None
        # The edit changes the policy digests, so this is a new context.
        assert pool.contexts_shipped > shipped_before
        assert [_fingerprint(o) for o in pooled] == [_fingerprint(o) for o in serial]


def test_run_checks_uses_worker_pool_and_falls_back_when_closed():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    universe, checks = _pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,))

    pool = WorkerPool(2)
    try:
        via_pool = run_checks(checks, config, universe, (ghost,), workers=pool)
        assert [_fingerprint(o) for o in via_pool] == [_fingerprint(o) for o in serial]
    finally:
        pool.close()
    # A closed pool refuses work; run_checks silently takes the serial path.
    after_close = run_checks(checks, config, universe, (ghost,), workers=pool)
    assert [_fingerprint(o) for o in after_close] == [_fingerprint(o) for o in serial]


def test_verify_safety_with_persistent_workers():
    config, ghost, prop, invariants = _fullmesh_problem(5)
    with WorkerPool(2) as pool:
        first = verify_safety(
            config, prop, invariants, ghosts=(ghost,), workers=pool
        )
        assert first.passed
        if pool.chunks_run == 0:
            pytest.skip("process pools unavailable in this environment")
        second = verify_safety(
            config, prop, invariants, ghosts=(ghost,), workers=pool
        )
        assert second.passed
        assert all(g == (0, 0) for g in pool.last_encoding_growth.values())


def _distinct_problem(i: int):
    """A fullmesh problem whose policy digests differ per ``i``."""
    from repro.bgp.policy import Disposition, MatchPrefix
    from repro.bgp.prefix import PrefixRange

    config, ghost, prop, invariants = _fullmesh_problem(4)
    if i:
        neighbor = config.routers["R3"].neighbors["E3"]
        deny = RouteMapClause(
            1,
            Disposition.DENY,
            matches=(MatchPrefix((PrefixRange.parse(f"10.{i}.0.0/16 le 32"),)),),
        )
        neighbor.import_map = RouteMap(
            f"EXT-IN-{i}", (deny,) + neighbor.import_map.clauses
        )
    return config, ghost, prop, invariants


def test_worker_pool_evicts_oldest_context_and_stays_correct():
    """Driving a small ``max_contexts`` pool through more distinct configs
    than it retains must bound the parent-side payloads (workers are told
    to drop theirs too) while every run still matches the serial path."""
    with WorkerPool(2, max_contexts=2) as pool:
        for i in range(4):
            config, ghost, prop, invariants = _distinct_problem(i)
            universe, checks = _pieces(config, ghost, prop, invariants)
            serial = run_checks(checks, config, universe, (ghost,))
            pooled = _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
            assert [_fingerprint(o) for o in pooled] == [
                _fingerprint(o) for o in serial
            ]
            # Bounded retention, parent-side: payloads, fingerprints, and
            # the FIFO order never exceed the configured maximum.
            assert len(pool._payloads) <= pool.max_contexts
            assert len(pool._tokens) <= pool.max_contexts
            assert len(pool._token_order) <= pool.max_contexts
            # Workers may only hold tokens the parent still knows about.
            live = set(pool._token_order)
            for shipped in pool._shipped:
                assert shipped <= live
        # Four distinct problems crossed a 2-context pool: evictions
        # happened (tokens 0 and 1 are gone) and each context was shipped
        # to at least one worker.
        assert pool._next_token == 4
        assert min(pool._token_order) >= 2
        assert pool.contexts_shipped >= 4


def test_worker_pool_reships_evicted_context_on_reuse():
    """Re-running an evicted problem is correct (the worker re-receives the
    context) and costs exactly one fresh shipment per worker touched."""
    with WorkerPool(1, max_contexts=1) as pool:
        config0, ghost0, prop0, invariants0 = _distinct_problem(0)
        universe0, checks0 = _pieces(config0, ghost0, prop0, invariants0)
        serial0 = run_checks(checks0, config0, universe0, (ghost0,))
        _pool_or_skip(pool, pool.run(checks0, config0, universe0, (ghost0,)))
        shipped_first = pool.contexts_shipped

        config1, ghost1, prop1, invariants1 = _distinct_problem(1)
        universe1, checks1 = _pieces(config1, ghost1, prop1, invariants1)
        pool.run(checks1, config1, universe1, (ghost1,))  # evicts problem 0
        assert pool.contexts_shipped > shipped_first

        shipped_before_rerun = pool.contexts_shipped
        again = pool.run(checks0, config0, universe0, (ghost0,))
        assert again is not None
        assert [_fingerprint(o) for o in again] == [
            _fingerprint(o) for o in serial0
        ]
        # The context had been dropped worker-side as well, so it was
        # shipped again — a new token, not a stale-reply hazard.
        assert pool.contexts_shipped == shipped_before_rerun + 1
        assert len(pool._payloads) == 1


def test_incremental_verifier_keeps_workers_across_reverify():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    v = IncrementalVerifier(
        config, prop, invariants, ghosts=(ghost,), parallel=2, backend="process"
    )
    try:
        assert v.verify().report.passed
        pool = v._worker_pool
        if pool is None or pool.chunks_run == 0:
            pytest.skip("process pools unavailable in this environment")

        edited, __, ___, ____ = _fullmesh_problem(4)
        strip = RouteMap(
            "STRIP",
            (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
        )
        edited.routers["R3"].neighbors["R1"].import_map = strip
        result = v.reverify(edited)
        assert not result.report.passed
        # Same WorkerPool object across verify/reverify — workers survived.
        assert v._worker_pool is pool
        assert {f.blamed_router for f in result.report.failures} == {"R3"}
    finally:
        v.close()


# ---------------------------------------------------------------------------
# Size-aware owner->worker assignment (PR 5)
# ---------------------------------------------------------------------------


def _chunk(owner: str, size: int, start: int = 0):
    """A synthetic (index, check) chunk of ``size`` checks owned by ``owner``."""
    from repro.lang.predicates import TruePred

    checks = [
        LocalCheck(
            kind=CheckKind.EXPORT,
            edge=Edge(owner, "EXT"),
            assumption=TruePred(),
            goal=TruePred(),
            description=f"synthetic {owner} #{i}",
        )
        for i in range(size)
    ]
    return [(start + i, c) for i, c in enumerate(checks)]


from repro.core.checks import CheckKind, LocalCheck  # noqa: E402


def test_assignment_is_size_aware_largest_first():
    """Unseen owners go largest-first to the least-loaded worker, so a
    heterogeneous owner mix balances by check weight, not arrival order."""
    pool = WorkerPool(2)
    chunks = [_chunk("tiny", 1), _chunk("huge", 10), _chunk("mid", 6), _chunk("small", 3)]
    pool._assign_owners(chunks, 2)
    a = pool._owner_assignment
    # largest-first: huge(10)->w0, mid(6)->w1, small(3)->w1 (6<10), tiny(1)->w1? no:
    # after small, loads are {0:10, 1:9}; tiny -> w1 (9<10) -> {0:10, 1:10}.
    assert a["huge"] != a["mid"]
    loads = pool.stats()["per_worker_weight"]
    assert sorted(loads) == [10, 10]  # perfectly balanced by weight
    assert pool.stats()["imbalance"] == 1.0
    # First-seen round-robin would have paired huge with small: [13, 7].


def test_assignment_is_sticky_across_runs():
    """An owner never moves once pinned — its worker's session encoding is
    the whole point — even if later runs change the size picture."""
    pool = WorkerPool(2)
    pool._assign_owners([_chunk("a", 5), _chunk("b", 4)], 2)
    first = dict(pool._owner_assignment)
    pool._assign_owners([_chunk("a", 1), _chunk("b", 50), _chunk("c", 2)], 2)
    assert {k: v for k, v in pool._owner_assignment.items() if k in first} == first
    assert "c" in pool._owner_assignment


def test_stats_reports_load_balance_shape():
    pool = WorkerPool(3)
    pool._assign_owners([_chunk("a", 9), _chunk("b", 5), _chunk("c", 4)], 3)
    stats = pool.stats()
    assert stats["jobs"] == 3
    assert stats["owners_assigned"] == 3
    assert sum(stats["per_worker_weight"]) == 18
    assert set(stats["owner_weight"]) == {"a", "b", "c"}
    assert stats["imbalance"] >= 1.0
    owners = [o for owner_list in stats["per_worker_owners"].values() for o in owner_list]
    assert sorted(owners) == ["a", "b", "c"]


def test_size_aware_pool_still_matches_serial_outcomes():
    """End-to-end: the new assignment changes scheduling only — outcomes
    and order are untouched."""
    config, ghost, prop, invariants = _fullmesh_problem(6)
    universe, checks = _pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,))
    with WorkerPool(3) as pool:
        pooled = _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        assert [_fingerprint(o) for o in pooled] == [_fingerprint(o) for o in serial]
        stats = pool.stats()
        assert stats["owners_assigned"] == len(pool._owner_assignment)
        assert sum(stats["per_worker_weight"]) == len(checks)
