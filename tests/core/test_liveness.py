"""Liveness verification on the Figure 1 network (Table 3 end to end)."""

from __future__ import annotations

import pytest

from repro.bgp.topology import Edge
from repro.core.checks import CheckKind
from repro.core.engine import Lightyear
from repro.core.liveness import (
    generate_propagation_checks,
    interference_properties,
    verify_liveness,
)
from repro.core.properties import LivenessProperty
from repro.lang.predicates import HasCommunity, Not, PrefixIn, TruePred
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1

from tests.core.conftest import customer_liveness_property


def test_customer_liveness_verifies(fig1_config):
    report = verify_liveness(fig1_config, customer_liveness_property())
    assert report.passed, "\n".join(f.explain() for f in report.failures)


def test_propagation_check_structure(fig1_config):
    prop = customer_liveness_property()
    checks = generate_propagation_checks(fig1_config, prop)
    kinds = [c.kind for c in checks]
    # Path Customer->R3, R3, R3->R2, R2, R2->ISP2 has two imports
    # (Customer->R3 at R3, R3->R2 at R2) and two exports (R3, R2).
    assert kinds == [
        CheckKind.PROPAGATE_IMPORT,
        CheckKind.PROPAGATE_EXPORT,
        CheckKind.PROPAGATE_IMPORT,
        CheckKind.PROPAGATE_EXPORT,
    ]
    assert checks[0].edge == Edge("Customer", "R3")
    assert checks[-1].edge == Edge("R2", "ISP2")


def test_interference_properties_target_path_routers(fig1_config):
    props = interference_properties(customer_liveness_property())
    assert set(props) == {"R3", "R2"}
    for safety_prop in props.values():
        assert "no-interference" in safety_prop.name


def test_liveness_fails_when_r3_keeps_communities():
    config = build_figure1(buggy_r3_strip=True)
    report = verify_liveness(config, customer_liveness_property())
    assert not report.passed
    # The propagation check at R3's customer import must fail: a tagged
    # customer route stays tagged.
    prop_failures = [
        o for o in report.propagation_outcomes if not o.passed and o.failure
    ]
    assert prop_failures
    witness = prop_failures[0].failure
    assert witness.check.edge == Edge("Customer", "R3")
    assert TRANSIT_COMMUNITY in witness.input_route.communities


def test_liveness_fails_when_path_filter_rejects_good_routes(fig1_config):
    # Claim good routes have a /26 customer prefix: R3's import only accepts
    # up to /24, so propagation fails with a rejection witness.
    from repro.bgp.prefix import Prefix, PrefixRange

    narrow = PrefixIn((PrefixRange(Prefix.parse("20.0.0.0/8"), 26, 26),))
    good = narrow & Not(HasCommunity(TRANSIT_COMMUNITY))
    prop = LivenessProperty(
        location=Edge("R2", "ISP2"),
        predicate=narrow,
        path=(
            Edge("Customer", "R3"),
            "R3",
            Edge("R3", "R2"),
            "R2",
            Edge("R2", "ISP2"),
        ),
        constraints=(narrow, good, good, good, narrow),
    )
    report = verify_liveness(fig1_config, prop)
    assert not report.passed
    rejection = [
        o.failure
        for o in report.propagation_outcomes
        if o.failure is not None and o.failure.rejected
    ]
    assert rejection, "expected a rejected-good-route witness"


def test_liveness_implication_check_failure(fig1_config):
    # C_n does not imply the property: catch it at the implication check.
    has_cust = PrefixIn.under(__import__("repro.bgp.prefix", fromlist=["Prefix"]).Prefix.parse("20.0.0.0/8"))
    prop = LivenessProperty(
        location=Edge("R2", "ISP2"),
        predicate=HasCommunity(TRANSIT_COMMUNITY),  # absurd goal
        path=(Edge("Customer", "R3"), "R3", Edge("R3", "R2"), "R2", Edge("R2", "ISP2")),
        constraints=(TruePred(),) * 5,
    )
    report = verify_liveness(fig1_config, prop)
    assert not report.implication_outcome.passed


def test_liveness_rejects_bogus_path(fig1_config):
    prop = LivenessProperty(
        location=Edge("R2", "ISP2"),
        predicate=TruePred(),
        path=("R3", Edge("R3", "R1"), "R2", Edge("R2", "ISP2")),  # R3->R1 then R2?
        constraints=(TruePred(),) * 4,
    )
    with pytest.raises(ValueError):
        verify_liveness(fig1_config, prop)


def test_liveness_report_metrics(fig1_config):
    report = verify_liveness(fig1_config, customer_liveness_property())
    assert report.num_checks > 4
    assert report.max_vars > 0
    assert report.solve_time_s >= 0
    assert "PASSED" in report.summary()


def test_liveness_through_engine(fig1_config):
    engine = Lightyear(fig1_config)
    report = engine.verify_liveness(customer_liveness_property())
    assert report.passed
    assert engine.stats.num_checks == report.num_checks


def test_custom_interference_invariants(fig1_config):
    # Supplying explicit invariant maps for the no-interference sub-proofs
    # must work when they are inductive.
    from repro.core.properties import InvariantMap

    prop = customer_liveness_property()
    props = interference_properties(prop)
    invariants = {
        router: InvariantMap(fig1_config.topology, default=sp.predicate)
        for router, sp in props.items()
    }
    report = verify_liveness(
        fig1_config, prop, interference_invariants=invariants
    )
    assert report.passed
