"""Tests for persistent CheckSessions across reverify calls and WAN sweeps.

The PR-2 claim is that re-verification cost tracks the size of the *change*:
a persistent :class:`SessionPool` keyed by owner router means a reverify
touching router R adds encoding only to R's session (everyone else's clause
database is bit-for-bit untouched), and a Table-4 sweep reuses one session
per owner across all property families instead of rebuilding encodings per
family.  The solver-level encoding counters are the witnesses.
"""

from __future__ import annotations

from repro.bgp.policy import (
    Disposition,
    MatchPrefix,
    RouteMap,
    RouteMapClause,
)
from repro.bgp.prefix import PrefixRange
from repro.core.incremental import IncrementalVerifier
from repro.core.safety import verify_safety_family
from repro.smt.solver import SessionPool
from repro.workloads.figure1 import build_figure1
from repro.workloads.wan import build_wan
from repro.workloads.wan_properties import (
    all_peering_problems,
    verify_ip_reuse_safety_problems,
    verify_peering_problems,
)

from tests.core.conftest import no_transit_invariants, no_transit_property


def _verifier(config, from_isp1):
    return IncrementalVerifier(
        config,
        no_transit_property(),
        no_transit_invariants(config),
        ghosts=(from_isp1,),
    )


def _edit_r3(config):
    """A benign import-map tweak on R3 (extra bogon deny)."""
    old_map = config.routers["R3"].neighbors["Customer"].import_map
    config.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN",
        (
            RouteMapClause(
                1,
                Disposition.DENY,
                matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
            ),
        )
        + old_map.clauses,
    )
    return config


def test_verify_builds_one_session_per_owner(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    # Three routers own filter checks; the implication check owns None.
    assert set(v.sessions.keys()) == {"R1", "R2", "R3", None}
    assert v.sessions.created == 4


def test_noop_reverify_touches_no_sessions(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    before = v.sessions.encoding_sizes()
    discharged_before = v.sessions.checks_discharged
    result = v.reverify(build_figure1())
    assert result.rerun_checks == 0
    assert v.sessions.encoding_sizes() == before
    assert v.sessions.checks_discharged == discharged_before


def test_reverify_reencodes_only_the_edited_owner(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    before = v.sessions.encoding_sizes()

    result = v.reverify(_edit_r3(build_figure1()))
    assert result.report.passed
    assert result.rerun_checks == 6  # R3's owner group

    after = v.sessions.encoding_sizes()
    assert v.sessions.created == 4  # sessions persisted, none rebuilt
    grew = {key for key in after if after[key] != before[key]}
    assert grew == {"R3"}, f"expected only R3's encoding to grow, got {grew}"
    # And it genuinely grew — the new deny clause needs new terms.
    assert after["R3"][0] > before["R3"][0]


def test_second_reverify_of_same_edit_adds_no_encoding(fig1_config, from_isp1):
    """Flip-flopping between two configs re-solves but re-encodes nothing:
    both policy variants are already in R3's persistent clause database."""
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    v.reverify(_edit_r3(build_figure1()))
    sizes_after_edit = v.sessions.encoding_sizes()

    v.reverify(build_figure1())  # back to the original policy
    v.reverify(_edit_r3(build_figure1()))  # and to the edit again
    assert v.sessions.encoding_sizes() == sizes_after_edit


def test_wan_sweep_shares_one_session_per_owner_across_families():
    wan = build_wan(regions=3, routers_per_region=3, peers_per_edge=1)
    problems = all_peering_problems(wan)[:4]
    pool = SessionPool()
    results = verify_peering_problems(wan, problems=problems, sessions=pool)
    assert all(report.passed for __, report in results)

    owners = set(wan.config.topology.routers) | {None}
    assert set(pool.keys()) == owners
    # One session per owner for the whole sweep — not per family.
    assert pool.created == len(owners)
    # Every family discharged its checks through the shared pool.
    assert pool.checks_discharged == sum(r.num_checks for __, r in results)


def test_wan_families_after_first_reuse_encodings():
    wan = build_wan(regions=3, routers_per_region=3, peers_per_edge=1)
    problems = all_peering_problems(wan)[:3]
    pool = SessionPool()

    verify_peering_problems(wan, problems=problems[:1], sessions=pool)
    first_total = sum(v for v, __ in pool.encoding_sizes().values())
    verify_peering_problems(wan, problems=problems[1:], sessions=pool)
    later_total = sum(v for v, __ in pool.encoding_sizes().values())

    # Two further families together must cost (much) less marginal encoding
    # than the first did: the transfer terms are already in the databases.
    assert later_total - first_total < first_total


def test_hoisted_peering_sweep_matches_per_family_runs():
    wan = build_wan(regions=3, routers_per_region=3, peers_per_edge=1)
    problems = all_peering_problems(wan)
    hoisted = verify_peering_problems(wan, problems=problems)
    for problem, report in zip(problems, (r for __, r in hoisted)):
        solo = verify_safety_family(
            wan.config, problem.properties, problem.invariants, ghosts=(problem.ghost,)
        )
        assert report.num_checks == solo.num_checks
        assert report.passed == solo.passed
        assert [o.passed for o in report.outcomes] == [o.passed for o in solo.outcomes]


def test_hoisted_ip_reuse_sweep_matches_per_region_runs():
    wan = build_wan(regions=3, routers_per_region=3, peers_per_edge=1)
    pool = SessionPool()
    results = verify_ip_reuse_safety_problems(wan, sessions=pool)
    assert len(results) == wan.regions
    assert all(report.passed for __, report in results)
    # Regions share the pool too: still one session per owner overall.
    assert pool.created == len(set(wan.config.topology.routers)) + 1
