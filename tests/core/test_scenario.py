"""Tests for impact assessment: immediate vs latent bug classification."""

from __future__ import annotations

from repro.bgp.policy import DeleteCommunity, RouteMap, RouteMapClause
from repro.bgp.topology import Edge
from repro.core.safety import verify_safety
from repro.core.scenario import assess_impact
from repro.lang.ghost import GhostAttribute
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1

from tests.core.conftest import no_transit_invariants, no_transit_property


def _ghost(config):
    return GhostAttribute.source_tracker(
        "FromISP1", config.topology, [Edge("ISP1", "R1")]
    )


def test_missing_tag_bug_is_immediate():
    # R1 fails to tag low-MED routes: such a route announced by ISP1 today
    # flows straight through R2 to ISP2 — immediate impact.
    config = build_figure1(buggy_r1_tagging=True)
    ghost = _ghost(config)
    report = verify_safety(
        config, no_transit_property(), no_transit_invariants(config), ghosts=(ghost,)
    )
    assert not report.passed
    assessment = assess_impact(config, no_transit_property(), ghost, report.failures[0])
    assert assessment.classification == "immediate"
    assert assessment.announced_from == ["ISP1"]
    assert "IMMEDIATE" in assessment.explain()


def test_strip_on_unused_path_is_latent():
    # R2 strips the community on its import from R3.  ISP1 routes travel
    # R1 -> R2 directly (iBGP full mesh; R3 never re-advertises them), so
    # the bug has no effect on today's routing — yet the local check fails:
    # the §6.1 "latent bug" shape.
    config = build_figure1()
    config.routers["R2"].neighbors["R3"].import_map = RouteMap(
        "STRIP",
        (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
    )
    ghost = _ghost(config)
    report = verify_safety(
        config, no_transit_property(), no_transit_invariants(config), ghosts=(ghost,)
    )
    assert not report.passed
    failure = next(f for f in report.failures if f.check.edge == Edge("R3", "R2"))
    assessment = assess_impact(config, no_transit_property(), ghost, failure)
    assert assessment.classification == "latent"
    assert "LATENT" in assessment.explain()


def test_assessment_with_no_ghost_sources_is_latent():
    config = build_figure1(buggy_r1_tagging=True)
    ghost = _ghost(config)
    report = verify_safety(
        config, no_transit_property(), no_transit_invariants(config), ghosts=(ghost,)
    )
    orphan = GhostAttribute("Orphan")  # tracks nothing
    assessment = assess_impact(
        config, no_transit_property(), orphan, report.failures[0]
    )
    assert not assessment.reproduced
    assert assessment.announced_from == []


def test_assessment_on_router_location():
    # Property at a router: a bogus route selected there counts as impact.
    from repro.core.properties import InvariantMap, SafetyProperty
    from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not

    config = build_figure1(buggy_r1_tagging=True)
    ghost = _ghost(config)
    prop = SafetyProperty(
        location="R2",
        predicate=Implies(GhostIs("FromISP1"), HasCommunity(TRANSIT_COMMUNITY)),
        name="tagged-at-r2",
    )
    invariants = InvariantMap(config.topology, default=prop.predicate)
    report = verify_safety(config, prop, invariants, ghosts=(ghost,))
    assert not report.passed
    assessment = assess_impact(config, prop, ghost, report.failures[0])
    # The untagged route does reach and get selected at R2.
    assert assessment.classification == "immediate"
