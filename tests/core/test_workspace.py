"""Tests for the session-oriented :class:`Workspace` API (PR 5).

Pinned claims:

* ``verify`` is property-polymorphic — a :class:`SafetyProperty` runs the
  §4 pipeline, a :class:`LivenessProperty` the §5 pipeline — and both
  match the free-function pipelines outcome for outcome;
* re-verifying through one workspace (``verify`` again, or
  ``apply``/``reverify``) consults only the owner groups a config edit
  invalidated, across *all* registered properties at once;
* ``save``/``load`` round-trips the outcome cache through disk: a fresh
  workspace (fresh process stand-in) skips the base run and consults only
  the edited owners' checks, while a config/ghost fingerprint mismatch or
  a corrupt/foreign file is rejected loudly;
* the legacy entry points (``Lightyear.verify_safety``/``verify_liveness``
  and both ``Incremental*Verifier`` classes) are deprecation shims: they
  warn, and they produce the same results as the workspace they wrap.
"""

from __future__ import annotations

import pickle

import pytest

from repro.bgp.policy import Disposition, MatchPrefix, RouteMap, RouteMapClause
from repro.bgp.prefix import PrefixRange
from repro.core.engine import Lightyear
from repro.core.incremental import IncrementalVerifier
from repro.core.incremental_liveness import IncrementalLivenessVerifier
from repro.core.liveness import verify_liveness
from repro.core.safety import verify_safety
from repro.core.workspace import (
    CACHE_FORMAT,
    Workspace,
    WorkspaceCacheError,
    WorkspaceCacheMismatch,
)
from repro.workloads.figure1 import build_figure1
from repro.workloads.fullmesh import (
    build_full_mesh,
    full_mesh_liveness_property,
    full_mesh_single_router_edit,
)

from tests.core.conftest import (
    customer_liveness_property,
    no_transit_invariants,
    no_transit_property,
)


def _edit_r3(config):
    """A benign import-map tweak on R3 (extra bogon deny)."""
    old_map = config.routers["R3"].neighbors["Customer"].import_map
    config.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN",
        (
            RouteMapClause(
                1,
                Disposition.DENY,
                matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
            ),
        )
        + old_map.clauses,
    )
    return config


def _outcome_fp(outcome):
    failure = outcome.failure
    return (
        str(outcome.check),
        outcome.passed,
        outcome.unknown,
        None
        if failure is None
        else (str(failure.input_route), str(failure.output_route), failure.rejected),
    )


def _report_fp(report):
    return sorted(_outcome_fp(o) for o in report.iter_outcomes())


# ---------------------------------------------------------------------------
# Polymorphic verify
# ---------------------------------------------------------------------------


def test_verify_dispatches_on_property_type(fig1_config, from_isp1):
    ws = Workspace(fig1_config, ghosts=(from_isp1,))
    safety = ws.verify(no_transit_property(), no_transit_invariants(fig1_config))
    liveness = ws.verify(customer_liveness_property())
    assert safety.passed and liveness.passed
    assert hasattr(liveness, "interference_reports")  # §5 pipeline ran
    assert not hasattr(safety, "interference_reports")  # §4 pipeline ran
    assert [e.kind for e in ws.entries] == ["safety", "liveness"]
    assert ws.stats.num_checks == safety.num_checks + liveness.num_checks


def test_verify_matches_free_functions(fig1_config, from_isp1):
    ws = Workspace(fig1_config, ghosts=(from_isp1,))
    safety = ws.verify(no_transit_property(), no_transit_invariants(fig1_config))
    liveness = ws.verify(customer_liveness_property())
    fresh_safety = verify_safety(
        fig1_config,
        no_transit_property(),
        no_transit_invariants(fig1_config),
        ghosts=(from_isp1,),
    )
    fresh_liveness = verify_liveness(
        fig1_config, customer_liveness_property(), ghosts=(from_isp1,)
    )
    assert _report_fp(safety) == _report_fp(fresh_safety)
    assert _report_fp(liveness) == _report_fp(fresh_liveness)


def test_verify_rejects_non_properties(fig1_config):
    ws = Workspace(fig1_config)
    with pytest.raises(TypeError):
        ws.verify("not a property")
    with pytest.raises(TypeError):
        # interference invariants make no sense for safety properties
        ws.verify(no_transit_property(), interference_invariants={})


def test_workspace_validates_config_and_backend(fig1_config):
    with pytest.raises(ValueError):
        Workspace(fig1_config, backend="quantum")
    broken = build_figure1()
    del broken.routers["R1"]
    with pytest.raises(ValueError):
        Workspace(broken)


def test_repeat_verify_consults_nothing(fig1_config, from_isp1):
    """The session-oriented payoff: a second verify of the same property
    is a cache hit end to end — zero checks consulted, same report."""
    ws = Workspace(fig1_config, ghosts=(from_isp1,))
    first = ws.verify(no_transit_property(), no_transit_invariants(fig1_config))
    second = ws.verify(no_transit_property(), no_transit_invariants(fig1_config))
    (entry,) = ws.entries
    assert entry.last_result.checks_consulted == 0
    assert entry.last_result.cached_checks == first.num_checks
    assert _report_fp(first) == _report_fp(second)


def test_different_budget_registers_a_separate_entry(fig1_config, from_isp1):
    ws = Workspace(fig1_config, ghosts=(from_isp1,))
    inv = no_transit_invariants(fig1_config)
    ws.verify(no_transit_property(), inv)
    assert ws.has_entry(no_transit_property(), inv)
    assert not ws.has_entry(no_transit_property(), inv, conflict_budget=123)
    ws.verify(no_transit_property(), inv, conflict_budget=123)
    assert len(ws.entries) == 2


# ---------------------------------------------------------------------------
# apply / reverify
# ---------------------------------------------------------------------------


def test_apply_reports_changed_owners(fig1_config, from_isp1):
    ws = Workspace(fig1_config, ghosts=(from_isp1,))
    changed = ws.apply(_edit_r3(build_figure1()))
    assert changed == {"R3"}


def test_reverify_touches_all_properties_but_only_edited_owners(
    fig1_config, from_isp1
):
    """One edit, one reverify call, every registered property updated —
    each consulting only the edited owner's groups."""
    ws = Workspace(fig1_config, ghosts=(from_isp1,))
    ws.verify(no_transit_property(), no_transit_invariants(fig1_config))
    ws.verify(customer_liveness_property())

    edited = _edit_r3(build_figure1())
    ws.apply(edited)
    safety_entry, liveness_entry = ws.reverify()

    # Safety: R3 owns 6 of the 19 checks.
    assert safety_entry.last_result.checks_consulted == 6
    assert safety_entry.last_result.cached_checks == 13
    assert safety_entry.last_result.report.passed
    # Liveness: R3's propagation checks + its group in each sub-proof,
    # never the implication.
    tracker = liveness_entry.tracker
    expected = len(tracker._prop_groups.get("R3", []))
    for groups in tracker._sub_groups.values():
        expected += len(groups.get("R3", []))
    assert liveness_entry.last_result.checks_consulted == expected
    assert liveness_entry.last_result.report.passed
    # Both match fresh pipelines on the edited config.
    assert _report_fp(safety_entry.last_result.report) == _report_fp(
        verify_safety(
            edited,
            no_transit_property(),
            no_transit_invariants(edited),
            ghosts=(from_isp1,),
        )
    )
    assert _report_fp(liveness_entry.last_result.report) == _report_fp(
        verify_liveness(edited, customer_liveness_property(), ghosts=(from_isp1,))
    )


def test_noop_reverify_consults_nothing(fig1_config, from_isp1):
    ws = Workspace(fig1_config, ghosts=(from_isp1,))
    ws.verify(no_transit_property(), no_transit_invariants(fig1_config))
    ws.apply(build_figure1())
    (entry,) = ws.reverify()
    assert entry.last_result.checks_consulted == 0
    assert entry.last_result.reuse_fraction == 1.0


# ---------------------------------------------------------------------------
# save / load (the on-disk outcome cache)
# ---------------------------------------------------------------------------


def _saved_workspace(tmp_path, config, ghosts, *problems):
    ws = Workspace(config, ghosts=ghosts)
    for prop, inv in problems:
        ws.verify(prop, inv)
    path = tmp_path / "cache" / "workspace.lyc"
    ws.save(path)
    return ws, path


def test_save_load_roundtrip_noop(tmp_path, fig1_config, from_isp1):
    ws, path = _saved_workspace(
        tmp_path,
        fig1_config,
        (from_isp1,),
        (no_transit_property(), no_transit_invariants(fig1_config)),
        (customer_liveness_property(), None),
    )
    original = [_report_fp(e.last_result.report) for e in ws.entries]

    loaded = Workspace.load(path, config=build_figure1(), ghosts=(from_isp1,))
    assert [e.kind for e in loaded.entries] == ["safety", "liveness"]
    entries = loaded.reverify()
    # Nothing changed: every cached outcome is reused without consultation.
    assert [e.last_result.checks_consulted for e in entries] == [0, 0]
    assert [_report_fp(e.last_result.report) for e in entries] == original


def test_load_then_edit_consults_only_the_owner(tmp_path, fig1_config, from_isp1):
    """The daemonless amortization story: a fresh workspace loads the base
    outcomes from disk and a single-router edit consults only that owner's
    checks — the base run never happens in the second 'process'."""
    __, path = _saved_workspace(
        tmp_path,
        fig1_config,
        (from_isp1,),
        (no_transit_property(), no_transit_invariants(fig1_config)),
    )
    loaded = Workspace.load(path, config=build_figure1(), ghosts=(from_isp1,))
    edited = _edit_r3(build_figure1())
    loaded.apply(edited)
    (entry,) = loaded.reverify()
    assert entry.last_result.checks_consulted == 6  # R3's group only
    assert entry.last_result.cached_checks == 13
    assert _report_fp(entry.last_result.report) == _report_fp(
        verify_safety(
            edited,
            no_transit_property(),
            no_transit_invariants(edited),
            ghosts=(from_isp1,),
        )
    )


def test_load_detects_breaking_edit(tmp_path, fig1_config, from_isp1):
    from repro.bgp.policy import DeleteCommunity
    from repro.workloads.figure1 import TRANSIT_COMMUNITY

    __, path = _saved_workspace(
        tmp_path,
        fig1_config,
        (from_isp1,),
        (no_transit_property(), no_transit_invariants(fig1_config)),
    )
    loaded = Workspace.load(path, config=build_figure1(), ghosts=(from_isp1,))
    broken = build_figure1()
    broken.routers["R2"].neighbors["R1"].import_map = RouteMap(
        "STRIP", (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),)
    )
    loaded.apply(broken)
    (entry,) = loaded.reverify()
    assert not entry.last_result.report.passed
    assert {f.blamed_router for f in entry.last_result.report.failures} == {"R2"}


def test_load_rejects_config_digest_mismatch(tmp_path, fig1_config, from_isp1):
    __, path = _saved_workspace(
        tmp_path,
        fig1_config,
        (from_isp1,),
        (no_transit_property(), no_transit_invariants(fig1_config)),
    )
    with pytest.raises(WorkspaceCacheMismatch):
        Workspace.load(path, config=_edit_r3(build_figure1()), ghosts=(from_isp1,))


def test_load_rejects_ghost_mismatch(tmp_path, fig1_config, from_isp1):
    from repro.bgp.topology import Edge
    from repro.lang.ghost import GhostAttribute

    __, path = _saved_workspace(
        tmp_path,
        fig1_config,
        (from_isp1,),
        (no_transit_property(), no_transit_invariants(fig1_config)),
    )
    other = GhostAttribute.source_tracker(
        "FromISP2", build_figure1().topology, [Edge("ISP2", "R2")]
    )
    with pytest.raises(WorkspaceCacheMismatch):
        Workspace.load(path, config=build_figure1(), ghosts=(other,))


def test_load_rejects_corrupt_and_foreign_files(tmp_path):
    garbage = tmp_path / "garbage.lyc"
    garbage.write_bytes(b"not a pickle at all")
    with pytest.raises(WorkspaceCacheError):
        Workspace.load(garbage)
    foreign = tmp_path / "foreign.lyc"
    foreign.write_bytes(pickle.dumps({"something": "else"}))
    with pytest.raises(WorkspaceCacheError):
        Workspace.load(foreign)
    missing = tmp_path / "nope.lyc"
    with pytest.raises(WorkspaceCacheError):
        Workspace.load(missing)


def test_load_rejects_future_format(tmp_path, fig1_config, from_isp1):
    __, path = _saved_workspace(
        tmp_path,
        fig1_config,
        (from_isp1,),
        (no_transit_property(), no_transit_invariants(fig1_config)),
    )
    state = pickle.loads(path.read_bytes())
    state["format"] = CACHE_FORMAT + 1
    path.write_bytes(pickle.dumps(state))
    with pytest.raises(WorkspaceCacheError):
        Workspace.load(path)


def test_save_load_liveness_on_fullmesh(tmp_path):
    """Liveness trackers round-trip too: off-path edit after a load
    consults only the edited owner's sub-proof groups."""
    n = 5
    config = build_full_mesh(n)
    prop = full_mesh_liveness_property(n)
    ws = Workspace(config)
    ws.verify(prop)
    path = tmp_path / "mesh.lyc"
    ws.save(path)

    loaded = Workspace.load(path, config=build_full_mesh(n))
    edited = full_mesh_single_router_edit(n)  # edits R5, off the path
    loaded.apply(edited)
    (entry,) = loaded.reverify()
    tracker = entry.tracker
    expected = sum(
        len(groups.get(f"R{n}", [])) for groups in tracker._sub_groups.values()
    )
    assert expected > 0
    assert entry.last_result.checks_consulted == expected
    assert _report_fp(entry.last_result.report) == _report_fp(
        verify_liveness(edited, prop)
    )


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------


def test_lightyear_verify_safety_warns_and_delegates(fig1_config, from_isp1):
    engine = Lightyear(fig1_config, ghosts=(from_isp1,))
    with pytest.warns(DeprecationWarning, match="Workspace.verify"):
        report = engine.verify_safety(
            no_transit_property(), no_transit_invariants(fig1_config)
        )
    assert report.passed
    # The engine's stats/sessions are the underlying workspace's.
    assert engine.stats is engine.workspace.stats
    assert engine.sessions is engine.workspace.sessions


def test_lightyear_verify_liveness_warns_and_delegates(fig1_config, from_isp1):
    engine = Lightyear(fig1_config, ghosts=(from_isp1,))
    with pytest.warns(DeprecationWarning, match="Workspace.verify"):
        report = engine.verify_liveness(customer_liveness_property())
    assert report.passed


def test_incremental_verifier_warns_and_matches_workspace(fig1_config, from_isp1):
    with pytest.warns(DeprecationWarning, match="Workspace"):
        verifier = IncrementalVerifier(
            fig1_config,
            no_transit_property(),
            no_transit_invariants(fig1_config),
            ghosts=(from_isp1,),
        )
    initial = verifier.verify()
    result = verifier.reverify(_edit_r3(build_figure1()))

    ws = Workspace(build_figure1(), ghosts=(from_isp1,))
    ws.verify(no_transit_property(), no_transit_invariants(fig1_config))
    ws.apply(_edit_r3(build_figure1()))
    (entry,) = ws.reverify()
    assert initial.rerun_checks == 19
    assert result.checks_consulted == entry.last_result.checks_consulted == 6
    assert _report_fp(result.report) == _report_fp(entry.last_result.report)


def test_incremental_liveness_verifier_warns(fig1_config):
    with pytest.warns(DeprecationWarning, match="Workspace"):
        verifier = IncrementalLivenessVerifier(
            fig1_config, customer_liveness_property()
        )
    assert verifier.verify().report.passed
