"""Differential tests: the PR 9 scheduler vs pre-refactor semantics.

The execution-runtime refactor's contract is behavioral identity: every
verification path now builds a :class:`CheckPlan` and hands it to the
:class:`Scheduler`, and nothing observable may change.  The reference
implementations here re-create the pre-refactor semantics directly —
hermetic per-check discharge (checks are independent, so the reference
needs no shared state) and the legacy barriered liveness order — and the
suite asserts the scheduler-driven paths return identical reports:
outcome fingerprints *in order*, unknown-reason buckets, degradation
counters, and cache-consultation counters, across backends and seeded
random configurations.  The deprecated verifier shims are held to the
same standard against the workspaces they wrap.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.policy import DeleteCommunity, RouteMap, RouteMapClause
from repro.bgp.topology import Edge
from repro.core.checks import generate_safety_checks
from repro.core.exec import ExecutionContext, Scheduler
from repro.core.incremental import IncrementalVerifier
from repro.core.liveness import (
    IMPLICATION_KEY,
    PROPAGATION_KEY,
    generate_liveness_checks,
    liveness_plan,
    liveness_universe,
    subproof_key,
    verify_liveness,
)
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.report import DegradationReport
from repro.core.safety import build_universe, run_checks, verify_safety
from repro.core.workspace import Workspace
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.workloads.figure1 import build_figure1
from repro.workloads.fullmesh import TRANSIT_COMMUNITY
from repro.workloads.randomnet import build_random_network

from tests.core.conftest import customer_liveness_property

#: The backend × job-count matrix every differential case runs over.
BACKENDS = (("serial", 1), ("thread", 2), ("process", 2), ("auto", 2))


def _fingerprint(outcome):
    failure = outcome.failure
    return (
        str(outcome.check),
        outcome.passed,
        outcome.unknown,
        outcome.unknown_reason,
        None
        if failure is None
        else (str(failure.input_route), str(failure.output_route), failure.rejected),
    )


def _no_transit_problem(n: int, model: str, seed: int, broken: bool):
    """A seeded random no-transit problem; ``broken`` strips the tag
    on one seeded-random internal import, violating the invariant there."""
    config = build_random_network(n, model=model, seed=seed)
    if broken:
        rng = random.Random(seed)
        internal = sorted(
            edge
            for edge in config.topology.edges
            if config.topology.is_router(edge.src)
            and config.topology.is_router(edge.dst)
        )
        edge = internal[rng.randrange(len(internal))]
        strip = RouteMap(
            "STRIP",
            (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
        )
        config.routers[edge.dst].neighbors[edge.src].import_map = strip
    ghost = GhostAttribute.source_tracker("FromE1", config.topology, [Edge("E1", "R1")])
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    return config, ghost, prop, invariants


# -- safety: every backend vs the hermetic reference -------------------


@pytest.mark.parametrize(
    "n,model,seed,broken",
    [(5, "gnp", 0, False), (5, "ba", 1, True), (5, "ring", 2, False), (6, "gnp", 3, True)],
)
def test_safety_identical_across_backends(n, model, seed, broken):
    config, ghost, prop, invariants = _no_transit_problem(n, model, seed, broken)
    universe = build_universe(config, invariants, [prop.predicate], (ghost,))
    checks = generate_safety_checks(config, invariants, prop.location, prop.predicate)
    reference = [_fingerprint(check.run(config, universe, (ghost,))) for check in checks]
    if broken:
        assert any(not passed for __, passed, *__rest in reference)
    for backend, parallel in BACKENDS:
        degradation = DegradationReport()
        outcomes = run_checks(
            checks,
            config,
            universe,
            (ghost,),
            parallel=parallel,
            backend=backend,
            degradation=degradation,
        )
        assert [_fingerprint(o) for o in outcomes] == reference, (backend, parallel)
        # A healthy platform records no degradation on any path.
        assert degradation.serial_fallbacks == 0, (backend, parallel)


def test_safety_report_buckets_identical_across_backends():
    config, ghost, prop, invariants = _no_transit_problem(5, "ba", 4, True)
    reference = verify_safety(config, prop, invariants, ghosts=(ghost,))
    for backend, parallel in BACKENDS:
        report = verify_safety(
            config, prop, invariants, ghosts=(ghost,), parallel=parallel, backend=backend
        )
        assert report.passed == reference.passed
        assert report.unknown_reason_counts == reference.unknown_reason_counts
        assert [_fingerprint(o) for o in report.iter_outcomes()] == [
            _fingerprint(o) for o in reference.iter_outcomes()
        ]


# -- liveness: pipelined and barriered plans vs the reference ----------


def test_liveness_plans_match_hermetic_reference():
    config = build_figure1()
    prop = customer_liveness_property()
    checks = generate_liveness_checks(config, prop)
    universe = liveness_universe(config, prop)
    prop_ref = [_fingerprint(c.run(config, universe, ())) for c in checks.propagation]
    impl_ref = _fingerprint(checks.implication.run(config, universe, ()))
    sub_ref = {
        router: [_fingerprint(c.run(config, universe, ())) for c in sub]
        for router, sub in checks.subproof_checks.items()
    }
    # Pipelined (the live order) and barriered (the pre-PR-9 order) plans
    # must be indistinguishable in everything but wall-clock shape.
    for pipelined in (True, False):
        context = ExecutionContext(None, "serial", None, None, None, autopool=False)
        result = Scheduler(context).run(
            liveness_plan(checks, pipelined=pipelined), config, universe, ()
        )
        assert [
            _fingerprint(o) for o in result.group(PROPAGATION_KEY)
        ] == prop_ref, pipelined
        assert _fingerprint(result.group(IMPLICATION_KEY)[0]) == impl_ref
        for router, ref in sub_ref.items():
            got = [_fingerprint(o) for o in result.group(subproof_key(router))]
            assert got == ref, (pipelined, router)


@pytest.mark.parametrize("buggy", [False, True])
def test_liveness_driver_identical_across_backends(buggy):
    config = build_figure1(buggy_r3_strip=buggy)
    prop = customer_liveness_property()
    reference = verify_liveness(config, prop)
    assert reference.passed is (not buggy)
    for backend, parallel in BACKENDS:
        report = verify_liveness(config, prop, parallel=parallel, backend=backend)
        assert report.passed == reference.passed, (backend, parallel)
        assert [_fingerprint(o) for o in report.iter_outcomes()] == [
            _fingerprint(o) for o in reference.iter_outcomes()
        ], (backend, parallel)
        assert report.unknown_reason_counts == reference.unknown_reason_counts


# -- incremental reverify: cached + fresh vs from-scratch --------------


@pytest.mark.parametrize("backend,parallel", [("serial", None), ("thread", 2), ("process", 2)])
def test_incremental_reverify_matches_scratch(backend, parallel):
    config, ghost, prop, invariants = _no_transit_problem(5, "gnp", 0, False)
    edited, __, __, __ = _no_transit_problem(5, "gnp", 0, True)
    workspace = Workspace(
        config, ghosts=(ghost,), parallel=parallel, backend=backend
    )
    try:
        first = workspace.verify(prop, invariants)
        assert first.passed
        workspace.apply(edited)
        result = workspace.reverify()[0].last_result
    finally:
        workspace.close()
    scratch = verify_safety(edited, prop, invariants, ghosts=(ghost,))
    # The incremental report orders cached groups before fresh ones, so
    # compare as multisets; pass/fail and unknown buckets must agree too.
    assert sorted(_fingerprint(o) for o in result.report.iter_outcomes()) == sorted(
        _fingerprint(o) for o in scratch.iter_outcomes()
    ), (backend, parallel)
    assert result.report.passed == scratch.passed is False
    assert (
        result.report.unknown_reason_counts == scratch.unknown_reason_counts
    )
    # Consultation accounting: a one-router edit consults exactly that
    # router's owner group — the O(changed-owner) claim.
    assert result.checks_consulted == result.rerun_checks
    assert result.rerun_checks + result.cached_checks == scratch.num_checks
    assert 0 < result.rerun_checks < scratch.num_checks


def test_incremental_liveness_reverify_matches_scratch():
    config = build_figure1()
    edited = build_figure1(buggy_r3_strip=True)
    prop = customer_liveness_property()
    workspace = Workspace(config)
    try:
        first = workspace.verify(prop)
        assert first.passed
        workspace.apply(edited)
        result = workspace.reverify()[0].last_result
    finally:
        workspace.close()
    scratch = verify_liveness(edited, prop)
    assert sorted(_fingerprint(o) for o in result.report.iter_outcomes()) == sorted(
        _fingerprint(o) for o in scratch.iter_outcomes()
    )
    assert result.report.passed == scratch.passed is False
    assert result.checks_consulted == result.rerun_checks
    assert result.rerun_checks + result.cached_checks == scratch.num_checks


# -- deprecated shims vs the workspaces they wrap ----------------------


def test_incremental_verifier_shim_matches_workspace():
    config, ghost, prop, invariants = _no_transit_problem(5, "ba", 1, False)
    edited, __, __, __ = _no_transit_problem(5, "ba", 1, True)

    with pytest.warns(DeprecationWarning):
        shim = IncrementalVerifier(config, prop, invariants, ghosts=(ghost,))
    try:
        shim_first = shim.verify()
        shim_again = shim.reverify(edited)
    finally:
        shim.close()

    workspace = Workspace(config, ghosts=(ghost,))
    try:
        ws_first = workspace.verify(prop, invariants)
        workspace.apply(edited)
        ws_again = workspace.reverify()[0].last_result
    finally:
        workspace.close()

    assert [_fingerprint(o) for o in shim_first.report.iter_outcomes()] == [
        _fingerprint(o) for o in ws_first.iter_outcomes()
    ]
    assert [_fingerprint(o) for o in shim_again.report.iter_outcomes()] == [
        _fingerprint(o) for o in ws_again.report.iter_outcomes()
    ]
    assert shim_again.rerun_checks == ws_again.rerun_checks
    assert shim_again.cached_checks == ws_again.cached_checks
    assert shim_again.checks_consulted == ws_again.checks_consulted
