"""Tests for the canned property templates."""

from __future__ import annotations

import pytest

from repro.bgp.policy import (
    AddCommunity,
    Disposition,
    MatchCommunity,
    MatchPrefix,
    RouteMap,
    RouteMapClause,
    SetLocalPref,
)
from repro.bgp.prefix import Prefix, PrefixRange
from repro.bgp.route import Community
from repro.bgp.topology import Edge
from repro.core.safety import verify_safety_family
from repro.core.templates import (
    attribute_bound,
    bogon_filtering,
    isolation,
    no_transit,
)
from repro.lang.predicates import LocalPrefIn
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1
from repro.workloads.fullmesh import build_full_mesh
from repro.workloads.wan import BOGON_PREFIXES, build_wan


def _run(config, problem):
    return verify_safety_family(
        config, problem.properties, problem.invariants, ghosts=problem.ghosts
    )


def test_no_transit_template_matches_manual_setup():
    config = build_figure1()
    problem = no_transit(
        config, [Edge("ISP1", "R1")], Edge("R2", "ISP2"), TRANSIT_COMMUNITY
    )
    report = _run(config, problem)
    assert report.passed


def test_no_transit_template_catches_bug():
    config = build_figure1(buggy_r1_tagging=True)
    problem = no_transit(
        config, [Edge("ISP1", "R1")], Edge("R2", "ISP2"), TRANSIT_COMMUNITY
    )
    report = _run(config, problem)
    assert not report.passed
    assert {f.blamed_router for f in report.failures} == {"R1"}


def test_isolation_template_protects_multiple_locations():
    config = build_full_mesh(5)
    # E1 routes (tagged 100:1 by R1's import) must not reach E2 *or* E3.
    # First give R3 the same protective export filter R2 has.
    e3_out = RouteMap(
        "E3-OUT",
        (
            RouteMapClause(
                10,
                Disposition.DENY,
                matches=(MatchCommunity(Community(100, 1)),),
            ),
            RouteMapClause(20),
        ),
    )
    config.routers["R3"].neighbors["E3"].export_map = e3_out
    problem = isolation(
        config,
        [Edge("E1", "R1")],
        [Edge("R2", "E2"), Edge("R3", "E3")],
        Community(100, 1),
    )
    assert len(problem.properties) == 2
    report = _run(config, problem)
    assert report.passed


def test_isolation_fails_without_protection():
    config = build_full_mesh(5)
    # R3 has no protective export: routes from E1 CAN reach E3.
    problem = isolation(
        config,
        [Edge("E1", "R1")],
        [Edge("R3", "E3")],
        Community(100, 1),
    )
    report = _run(config, problem)
    assert not report.passed
    assert {f.blamed_router for f in report.failures} == {"R3"}


def test_isolation_requires_protected_locations():
    config = build_full_mesh(3)
    with pytest.raises(ValueError):
        isolation(config, [Edge("E1", "R1")], [], Community(100, 1))


def test_bogon_filtering_template_on_wan():
    wan = build_wan(regions=2, routers_per_region=2)
    untrusted = [Edge(peer, router) for peer, router in wan.peers.items()]
    problem = bogon_filtering(wan.config, untrusted, BOGON_PREFIXES)
    report = _run(wan.config, problem)
    assert report.passed


def test_bogon_filtering_template_catches_buggy_router():
    wan = build_wan(regions=2, routers_per_region=2, buggy_edge_router="W0-0")
    untrusted = [Edge(peer, router) for peer, router in wan.peers.items()]
    problem = bogon_filtering(wan.config, untrusted, BOGON_PREFIXES)
    report = _run(wan.config, problem)
    assert not report.passed
    assert {f.blamed_router for f in report.failures} == {"W0-0"}


def test_attribute_bound_template():
    # Build a network where routes for 30.0.0.0/8 always get local-pref 200
    # at the border, and verify the bound network-wide.
    config = build_figure1()
    special = PrefixRange(Prefix.parse("30.0.0.0/8"), 8, 24)
    for router, peer in (("R1", "ISP1"), ("R2", "ISP2"), ("R3", "Customer")):
        old = config.routers[router].neighbors[peer].import_map
        boost = RouteMapClause(
            0,
            matches=(MatchPrefix((special,)),),
            actions=(SetLocalPref(200),)
            + (old.clauses[-1].actions if old and router == "R1" else ()),
        )
        clauses = (boost,) + (old.clauses if old else (RouteMapClause(10),))
        config.routers[router].neighbors[peer].import_map = RouteMap(
            f"{peer}-IN2", clauses
        )
    problem = attribute_bound(config, [special], LocalPrefIn(200, 200))
    report = _run(config, problem)
    assert report.passed, "\n".join(f.explain() for f in report.failures)


def test_attribute_bound_detects_violating_filter():
    config = build_figure1()
    special = PrefixRange(Prefix.parse("30.0.0.0/8"), 8, 24)
    # No filter establishes the bound: the external imports must fail.
    problem = attribute_bound(config, [special], LocalPrefIn(200, 200))
    report = _run(config, problem)
    assert not report.passed


def test_attribute_bound_requires_locations():
    config = build_figure1()
    with pytest.raises(ValueError):
        attribute_bound(
            config,
            [PrefixRange(Prefix.parse("30.0.0.0/8"), 8, 24)],
            LocalPrefIn(1, 2),
            locations=[],
        )
