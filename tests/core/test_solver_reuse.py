"""Solver warm-start (PR 7): learnt-clause and shared-fragment reuse.

Three layers are pinned here:

* **SatSolver mechanics** — the learnt-DB cap persists across ``solve``
  calls (the bug this PR fixes), ``inject_learnts`` installs foreign
  payloads defensively, and the shared-bound taint policy drops exactly
  the clauses that mention post-preamble (check-local) variables;
* **CheckSession / SessionPool** — shared fragments are asserted once
  and skipped per check, exports round-trip into a deterministically
  replayed session, digest mismatches refuse the import and keep the
  seed pending for retry;
* **Differential equivalence** — with reuse on vs. off, every check
  outcome is identical on randomized safety configs and on liveness
  problems.  Reuse is a performance policy; it must never change an
  answer.
"""

from __future__ import annotations

import pytest

from repro.bgp.topology import Edge
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.safety import verify_safety
from repro.core.liveness import verify_liveness
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.smt.sat import SatSolver
from repro.smt.solver import (
    CheckSession,
    SessionPool,
    set_solver_reuse_enabled,
    solver_reuse_enabled,
)
from repro.workloads.fullmesh import (
    TRANSIT_COMMUNITY,
    build_full_mesh,
    full_mesh_liveness_property,
)
from repro.workloads.randomnet import build_random_network
from repro.workloads.wan import build_wan
from repro.workloads.wan_properties import (
    verify_ip_reuse_safety_problems,
    verify_peering_problems,
)


@pytest.fixture
def reuse_flag():
    """Restore the global reuse toggle after a test that flips it."""
    before = solver_reuse_enabled()
    yield
    set_solver_reuse_enabled(before)


# ---------------------------------------------------------------------------
# SatSolver mechanics
# ---------------------------------------------------------------------------


class TestSatWarmStart:
    def test_learnt_cap_persists_across_solve_calls(self):
        # The fixed bug: solve() used to reset the cap to max_learnts_base
        # every call, so a grown DB was re-truncated by each later check.
        solver = SatSolver()
        a = solver.new_var()
        solver.add_clause([a])
        solver._max_learnts = 123456
        assert solver.solve() is True
        assert solver._max_learnts == 123456

    def _three_var_solver(self):
        solver = SatSolver()
        a, b, c = solver.new_var(), solver.new_var(), solver.new_var()
        return solver, a, b, c

    def test_inject_skips_clause_with_unknown_variable(self):
        solver, a, b, c = self._three_var_solver()
        assert solver.inject_learnts([[a, 99]]) == 0
        assert solver.learnts == []

    def test_inject_skips_tautology(self):
        solver, a, b, c = self._three_var_solver()
        assert solver.inject_learnts([[a, -a, b]]) == 0
        assert solver.learnts == []

    def test_inject_skips_root_satisfied_clause(self):
        solver, a, b, c = self._three_var_solver()
        solver.add_clause([a])  # a is true at level 0
        assert solver.inject_learnts([[a, b]]) == 0
        assert solver.learnts == []

    def test_inject_drops_root_false_literal(self):
        solver, a, b, c = self._three_var_solver()
        solver.add_clause([-a])  # a is false at level 0
        assert solver.inject_learnts([[a, b, c]]) == 1
        assert sorted(solver.learnts[0]) == sorted([b, c])

    def test_inject_unit_is_enqueued_at_root(self):
        solver, a, b, c = self._three_var_solver()
        assert solver.inject_learnts([[b]]) == 1
        assert solver.stats.learned_imported == 1
        assert solver.solve([-b]) is False  # unit b is now a root fact
        assert solver.solve([b]) is True

    def test_inject_counts_only_installed(self):
        solver, a, b, c = self._three_var_solver()
        installed = solver.inject_learnts([[a, b], [a, 99], [c]])
        assert installed == 2
        assert solver.stats.learned_imported == 2

    def test_taint_machinery_drops_pending_from_db_and_watches(self):
        solver, a, b, c = self._three_var_solver()
        clause = [a << 1, b << 1]  # literal codes for (a or b)
        solver._learnts.append(clause)
        solver._watches[clause[0]].append(clause)
        solver._watches[clause[1]].append(clause)
        solver._pending_tainted.append(clause)
        solver.retain_shared_learnts()
        assert solver.learnts == []
        assert clause not in solver._watches[clause[0]]
        assert clause not in solver._watches[clause[1]]
        assert solver.stats.learned_dropped == 1

    def test_taint_drop_ignores_clause_already_reduced_away(self):
        # _reduce_db may remove a pending-tainted clause first; the later
        # drop must not double-count it.
        solver, a, b, c = self._three_var_solver()
        clause = [a << 1, b << 1]
        solver._pending_tainted.append(clause)  # never entered _learnts
        solver.retain_shared_learnts()
        assert solver.stats.learned_dropped == 0

    def test_no_bound_means_no_taint(self):
        # Without a shared_var_bound, solve() retains every learnt clause
        # (MiniSat-style incremental behaviour — the pre-PR default).
        solver = SatSolver()
        assert solver.shared_var_bound is None
        vars_ = [solver.new_var() for _ in range(6)]
        solver.add_clause([vars_[0], vars_[1]])
        solver.add_clause([-vars_[0], vars_[2]])
        solver.solve([vars_[3]])
        assert solver._pending_tainted == []


# ---------------------------------------------------------------------------
# CheckSession / SessionPool reuse surface
# ---------------------------------------------------------------------------


def _wan_pool():
    wan = build_wan(regions=2, routers_per_region=3)
    pool = SessionPool()
    verify_ip_reuse_safety_problems(wan, sessions=pool)
    return wan, pool


class TestSessionReuse:
    def test_shared_fragments_skip_per_check_assumptions(self):
        wan, pool = _wan_pool()
        stats = pool.stats()
        # Every discharged check skipped at least the well-formedness
        # fragment it used to ship as an assumption.
        assert stats["shared_skips"] >= stats["checks_discharged"] > 0

    def test_export_produces_bounded_signed_clauses(self):
        wan, pool = _wan_pool()
        exports = pool.export_learnts()
        assert exports, "expected at least one owner to export learnt clauses"
        for key, (digest, clauses) in exports.items():
            session = pool._sessions[key]
            assert digest == session.preamble_digest
            assert len(clauses) <= CheckSession.MAX_EXPORT_CLAUSES
            for clause in clauses:
                assert 0 < len(clause) <= CheckSession.MAX_EXPORT_CLAUSE_LEN
                assert all(
                    lit != 0 and abs(lit) <= session._preamble_vars
                    for lit in clause
                )

    def test_export_import_round_trip_counts(self):
        wan, pool = _wan_pool()
        exports = pool.export_learnts()
        total = sum(len(clauses) for __, clauses in exports.values())
        assert total > 0

        # Deterministic replay: a fresh pool running the same problems
        # reaches the same preamble digests, so staged seeds import.
        fresh = SessionPool()
        for key, (digest, clauses) in exports.items():
            fresh.seed(key, digest, clauses)
        verify_ip_reuse_safety_problems(wan, sessions=fresh)
        stats = fresh.stats()
        assert stats["learnts_imported"] > 0
        assert stats["pending_seeds"] == 0

    def test_digest_mismatch_refuses_import_and_keeps_seed(self):
        wan, pool = _wan_pool()
        exports = pool.export_learnts()
        key, (digest, clauses) = next(iter(exports.items()))
        session = pool._sessions[key]
        before = len(session._sat._learnts)

        got = session.import_learnts("0" * 64, clauses)
        assert got is None
        assert session.import_digest_mismatches == 1
        assert len(session._sat._learnts) == before

        # Through the pool: a mismatching seed stays pending for retry.
        pool.seed(key, "0" * 64, clauses)
        assert pool.try_seed(key, session) is None
        assert key in pool.seeds

    def test_matching_digest_imports(self):
        wan, pool = _wan_pool()
        exports = pool.export_learnts()
        key, (digest, clauses) = next(iter(exports.items()))
        session = pool._sessions[key]
        got = session.import_learnts(digest, clauses)
        assert got is not None and got >= 0
        assert session.learnts_imported == got

    def test_reuse_disabled_session_exports_nothing(self, reuse_flag):
        set_solver_reuse_enabled(False)
        wan = build_wan(regions=2, routers_per_region=3)
        pool = SessionPool()
        verify_ip_reuse_safety_problems(wan, sessions=pool)
        stats = pool.stats()
        assert stats["shared_skips"] == 0
        assert pool.export_learnts() == {}
        for session in pool._sessions.values():
            assert not session.reuse_enabled
            assert session.preamble_digest is None


# ---------------------------------------------------------------------------
# Differential: reuse on vs. off never changes an outcome
# ---------------------------------------------------------------------------


def _no_transit_problem(config):
    ghost = GhostAttribute.source_tracker("FromE1", config.topology, [Edge("E1", "R1")])
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    return ghost, prop, invariants


def _outcome_fingerprint(report):
    return sorted(
        (str(o.check), o.passed, o.unknown, o.unknown_reason)
        for o in report.iter_outcomes()
    )


def _with_reuse(enabled, fn):
    before = solver_reuse_enabled()
    set_solver_reuse_enabled(enabled)
    try:
        return fn()
    finally:
        set_solver_reuse_enabled(before)


@pytest.mark.parametrize("model", ["gnp", "ba", "ring"])
@pytest.mark.parametrize("seed", [0, 1])
def test_differential_safety_random_networks(model, seed):
    config = build_random_network(8, model=model, seed=seed)
    ghost, prop, invariants = _no_transit_problem(config)

    def run():
        return verify_safety(config, prop, invariants, ghosts=(ghost,))

    on = _with_reuse(True, run)
    off = _with_reuse(False, run)
    assert on.passed == off.passed
    assert _outcome_fingerprint(on) == _outcome_fingerprint(off)


@pytest.mark.parametrize("n", [6, 10])
def test_differential_liveness_fullmesh(n):
    config = build_full_mesh(n)
    prop = full_mesh_liveness_property(n)

    def run():
        return verify_liveness(config, prop)

    on = _with_reuse(True, run)
    off = _with_reuse(False, run)
    assert on.passed == off.passed
    assert _outcome_fingerprint(on) == _outcome_fingerprint(off)


def test_differential_wan_with_learnt_traffic():
    # The workload that actually learns (and retains) clauses: outcomes
    # must still be identical with the learnt DB warm vs. cold.
    wan = build_wan(regions=2, routers_per_region=3)

    def run():
        pool = SessionPool()
        results = verify_ip_reuse_safety_problems(wan, sessions=pool)
        peering = verify_peering_problems(wan, sessions=pool)
        fingerprints = [
            (problem.region, _outcome_fingerprint(report))
            for problem, report in results
        ]
        fingerprints += [
            (problem.name, _outcome_fingerprint(report))
            for problem, report in peering
        ]
        return fingerprints

    assert _with_reuse(True, run) == _with_reuse(False, run)


def test_differential_warm_seeded_pool_same_outcomes():
    # Even a pool warm-started from another run's export must answer
    # identically (imported clauses are consequences, not new axioms).
    wan = build_wan(regions=2, routers_per_region=3)
    cold_pool = SessionPool()
    cold = verify_ip_reuse_safety_problems(wan, sessions=cold_pool)
    exports = cold_pool.export_learnts()
    assert exports

    warm_pool = SessionPool()
    for key, (digest, clauses) in exports.items():
        warm_pool.seed(key, digest, clauses)
    warm = verify_ip_reuse_safety_problems(wan, sessions=warm_pool)
    assert warm_pool.stats()["learnts_imported"] > 0

    assert [
        _outcome_fingerprint(report) for __, report in cold
    ] == [_outcome_fingerprint(report) for __, report in warm]
