"""Tests for incremental liveness re-verification (the §5 reuse wrapper).

The pinned claims mirror the safety-side ``IncrementalVerifier`` suite:

* a single-router edit consults only that owner's check groups — its
  propagation checks (if it sits on the witness path) and its owner group
  inside every no-interference sub-proof — and **never** the final
  implication;
* outcomes are identical to a fresh ``verify_liveness`` on the edited
  configuration (pass, fail, and external-ASN-edit cases, plus randomized
  edit sequences);
* a network-level edit (``set_external_asn``) invalidates everything;
* unchanged owners are never re-encoded (the session pool's per-owner
  encoding sizes are the witness);
* ``conflict_budget`` is threaded through to ``run_checks``;
* ``Lightyear.incremental_liveness`` borrows the engine's pools.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.policy import (
    DeleteCommunity,
    Disposition,
    MatchPrefix,
    RouteMap,
    RouteMapClause,
)
from repro.bgp.prefix import Prefix, PrefixRange
from repro.core.engine import Lightyear
from repro.core.incremental_liveness import IncrementalLivenessVerifier
from repro.core.liveness import verify_liveness
from repro.workloads.figure1 import build_figure1
from repro.workloads.fullmesh import (
    TRANSIT_COMMUNITY,
    build_full_mesh,
    full_mesh_external_asn_edit,
    full_mesh_liveness_property,
    full_mesh_single_router_edit,
)

from tests.core.conftest import customer_liveness_property


def _outcome_fp(outcome):
    failure = outcome.failure
    return (
        str(outcome.check),
        outcome.passed,
        outcome.unknown,
        None
        if failure is None
        else (str(failure.input_route), str(failure.output_route), failure.rejected),
    )


def _liveness_fp(report):
    """Order-insensitive per-section fingerprint.

    The incremental verifier assembles each section from its owner groups,
    so within a section the outcome *order* differs from a fresh pipeline;
    the *set* of (check, outcome) pairs must not.
    """
    return (
        sorted(_outcome_fp(o) for o in report.propagation_outcomes),
        _outcome_fp(report.implication_outcome),
        {
            router: sorted(_outcome_fp(o) for o in rep.outcomes)
            for router, rep in report.interference_reports.items()
        },
    )


def _expected_owner_consultation(verifier, owner):
    """How many checks the owner index holds for ``owner`` across stages."""
    count = len(verifier._prop_groups.get(owner, []))
    for groups in verifier._sub_groups.values():
        count += len(groups.get(owner, []))
    return count


def test_initial_run_matches_fresh_pipeline_and_counts_everything():
    config = build_full_mesh(5)
    prop = full_mesh_liveness_property(5)
    v = IncrementalLivenessVerifier(config, prop)
    result = v.verify()
    fresh = verify_liveness(config, prop)
    assert result.report.passed
    assert result.report.num_checks == fresh.num_checks
    assert _liveness_fp(result.report) == _liveness_fp(fresh)
    assert result.cached_checks == 0
    assert result.rerun_checks == fresh.num_checks
    assert result.checks_consulted == fresh.num_checks


def test_noop_reverify_consults_no_checks():
    config = build_full_mesh(5)
    prop = full_mesh_liveness_property(5)
    v = IncrementalLivenessVerifier(config, prop)
    initial = v.verify()
    result = v.reverify(build_full_mesh(5))
    assert result.report.passed
    assert result.rerun_checks == 0
    assert result.checks_consulted == 0
    assert result.cached_checks == initial.rerun_checks
    assert result.reuse_fraction == 1.0
    assert _liveness_fp(result.report) == _liveness_fp(initial.report)


def test_off_path_edit_consults_only_subproof_groups():
    """An edit off the witness path invalidates no propagation check and
    never the implication — just the owner's group in each sub-proof."""
    n = 5
    v = IncrementalLivenessVerifier(build_full_mesh(n), full_mesh_liveness_property(n))
    v.verify()
    implication_before = v._impl_outcome

    edited = full_mesh_single_router_edit(n)  # edits R5, off the E2->R2->R3 path
    result = v.reverify(edited)
    assert result.report.passed
    expected = _expected_owner_consultation(v, f"R{n}")
    assert len(v._prop_groups.get(f"R{n}", [])) == 0  # truly off-path
    assert result.checks_consulted == expected
    assert result.rerun_checks == expected
    # The implication outcome was reused wholesale, not re-run.
    assert v._impl_outcome is implication_before
    assert _liveness_fp(result.report) == _liveness_fp(verify_liveness(edited, v.prop))


def test_on_path_edit_also_reruns_its_propagation_checks():
    n = 5
    v = IncrementalLivenessVerifier(build_full_mesh(n), full_mesh_liveness_property(n))
    v.verify()
    implication_before = v._impl_outcome

    edited = full_mesh_single_router_edit(n, router="R2")  # on the witness path
    result = v.reverify(edited)
    # The bogon deny overlaps the short-prefix constraint, so the import
    # propagation check at R2 now genuinely fails — a localized failure the
    # incremental run must detect from R2's groups alone.
    fresh = verify_liveness(edited, v.prop)
    assert not fresh.passed
    assert not result.report.passed
    expected = _expected_owner_consultation(v, "R2")
    assert len(v._prop_groups.get("R2", [])) > 0  # import from E2, export to R3
    assert result.checks_consulted == expected
    assert v._impl_outcome is implication_before
    assert _liveness_fp(result.report) == _liveness_fp(fresh)


def test_breaking_edit_detected_incrementally_and_revertible():
    prop = customer_liveness_property()
    v = IncrementalLivenessVerifier(build_figure1(), prop)
    assert v.verify().report.passed

    broken = build_figure1(buggy_r3_strip=True)
    result = v.reverify(broken)
    assert not result.report.passed
    assert result.rerun_checks == _expected_owner_consultation(v, "R3")
    assert _liveness_fp(result.report) == _liveness_fp(verify_liveness(broken, prop))

    # Reverting the edit re-runs R3's groups again and passes.
    reverted = v.reverify(build_figure1())
    assert reverted.report.passed
    assert reverted.rerun_checks == result.rerun_checks


def test_external_asn_edit_recomputes_everything():
    """Regression guard shared with the safety verifier: ``set_external_asn``
    changes no router digest, yet must invalidate every cached outcome."""
    n = 5
    v = IncrementalLivenessVerifier(build_full_mesh(n), full_mesh_liveness_property(n))
    initial = v.verify()
    assert v.universe_builds == 1

    edited = full_mesh_external_asn_edit(n)
    result = v.reverify(edited)
    total = result.rerun_checks + result.cached_checks
    assert result.rerun_checks == total  # nothing reused
    assert result.cached_checks == 0
    assert v.universe_builds == 2  # the universe content genuinely changed
    assert _liveness_fp(result.report) == _liveness_fp(verify_liveness(edited, v.prop))
    assert total == initial.rerun_checks


def test_unchanged_owners_are_not_reencoded():
    n = 5
    v = IncrementalLivenessVerifier(build_full_mesh(n), full_mesh_liveness_property(n))
    v.verify()
    sizes_before = v.sessions.encoding_sizes()

    result = v.reverify(full_mesh_single_router_edit(n))
    assert result.report.passed
    sizes_after = v.sessions.encoding_sizes()
    grown = {k for k in sizes_after if sizes_after[k] != sizes_before.get(k)}
    assert grown == {f"R{n}"}  # only the edited owner's session grew


def test_noop_reverify_adds_no_encoding():
    n = 5
    v = IncrementalLivenessVerifier(build_full_mesh(n), full_mesh_liveness_property(n))
    v.verify()
    encoded = v.sessions.total_encoding()
    v.reverify(build_full_mesh(n))
    assert v.sessions.total_encoding() == encoded


def _random_edit(config, rng, n):
    """Apply one random edit; returns the kind applied.

    Mix of benign (extra bogon deny on an external import), breaking (a
    short-prefix deny on the witness path's R2->R3 export, or a transit-tag
    strip on an internal import), and network-level (external ASN) edits.
    """
    kind = rng.choice(("benign", "break-propagation", "strip", "asn"))
    if kind == "benign":
        router = f"R{rng.randrange(1, n + 1)}"
        external = "E" + router[1:]
        neighbor = config.routers[router].neighbors[external]
        deny = RouteMapClause(
            min(c.seq for c in neighbor.import_map.clauses) - 1,
            Disposition.DENY,
            matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
        )
        neighbor.import_map = RouteMap(
            f"{neighbor.import_map.name}-R{rng.randrange(1000)}",
            (deny,) + neighbor.import_map.clauses,
        )
    elif kind == "break-propagation":
        deny_short = RouteMapClause(
            10,
            Disposition.DENY,
            matches=(MatchPrefix((PrefixRange(Prefix.parse("0.0.0.0/0"), 0, 24),)),),
        )
        config.routers["R2"].neighbors["R3"].export_map = RouteMap(
            "BREAK-PROP", (deny_short, RouteMapClause(20))
        )
    elif kind == "strip":
        src = f"R{rng.randrange(1, n + 1)}"
        dst = rng.choice([r for r in config.routers if r != src])
        config.routers[dst].neighbors[src].import_map = RouteMap(
            "STRIP", (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),)
        )
    else:
        config.set_external_asn(f"E{rng.randrange(1, n + 1)}", 60000 + rng.randrange(100))
    return kind


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_edit_sequence_matches_fresh_pipeline(seed):
    """Differential: a chain of random reverifies equals fresh runs."""
    n = 4
    rng = random.Random(seed)
    prop = full_mesh_liveness_property(n)
    v = IncrementalLivenessVerifier(build_full_mesh(n), prop)
    v.verify()
    # The mutation mix makes the sequence hit both pass and fail outcomes
    # across seeds; each step must agree with a from-scratch pipeline.
    for __ in range(3):
        edited = build_full_mesh(n)
        for ___ in range(rng.randrange(1, 3)):
            _random_edit(edited, rng, n)
        result = v.reverify(edited)
        fresh = verify_liveness(edited, prop)
        assert result.report.passed == fresh.passed
        assert _liveness_fp(result.report) == _liveness_fp(fresh)


def test_conflict_budget_is_threaded_to_run_checks(monkeypatch):
    import repro.core.incremental_liveness as mod

    captured = []
    real = mod.Scheduler.run

    def spy(self, *args, **kwargs):
        captured.append(kwargs.get("conflict_budget"))
        return real(self, *args, **kwargs)

    monkeypatch.setattr(mod.Scheduler, "run", spy)
    config = build_figure1()
    v = IncrementalLivenessVerifier(
        config, customer_liveness_property(), conflict_budget=7777
    )
    v.verify()
    v.reverify(build_figure1(buggy_r3_strip=True))
    assert captured and all(budget == 7777 for budget in captured)


def test_engine_factory_borrows_engine_pools():
    config = build_figure1()
    prop = customer_liveness_property()
    with Lightyear(config) as engine:
        v = engine.incremental_liveness(prop)
        assert v.sessions is engine.sessions
        result = v.verify()
        assert result.report.passed
        assert len(engine.sessions) > 0  # encodings landed in the engine pool
        # close() must not touch anything it does not own.
        v.close()
        assert v._worker_pool is None


def test_topology_change_triggers_full_rerun():
    n = 4
    prop = full_mesh_liveness_property(n)
    v = IncrementalLivenessVerifier(build_full_mesh(n), prop)
    initial = v.verify()

    grown = build_full_mesh(n + 1)  # same path, one more router and external
    result = v.reverify(grown)
    assert result.report.passed
    assert result.cached_checks == 0
    assert result.rerun_checks > initial.rerun_checks
    assert _liveness_fp(result.report) == _liveness_fp(verify_liveness(grown, prop))
