"""Chunk-granular recovery tests: killed workers, redispatch, quarantine.

The fault-tolerance claim is precise: when a worker process dies mid-run,
the pool respawns it and re-dispatches *only the lost chunks* — never the
whole run, and never by silently falling back to a full serial rerun.
These tests kill workers at deterministic points via the fault-injection
harness and counter-assert exactly that.

``REPRO_CHAOS_SEED`` (set by the CI chaos job) varies the mesh size and
the targeted worker so repeated runs walk different schedules.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings

import pytest

from repro.bgp.topology import Edge
from repro.core.checks import check_owner, generate_safety_checks
from repro.core.parallel import WorkerPool
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.safety import build_universe, run_checks, verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.testing import faults
from repro.testing.faults import FaultPlan
from repro.workloads.fullmesh import TRANSIT_COMMUNITY, build_full_mesh

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
MESH_SIZE = 4 + CHAOS_SEED % 3
KILL_INDEX = CHAOS_SEED % 2


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def _fullmesh_problem(n: int):
    config = build_full_mesh(n)
    ghost = GhostAttribute.source_tracker("FromE1", config.topology, [Edge("E1", "R1")])
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    return config, ghost, prop, invariants


def _pieces(config, ghost, prop, invariants):
    universe = build_universe(config, invariants, [prop.predicate], (ghost,))
    checks = generate_safety_checks(config, invariants, prop.location, prop.predicate)
    return universe, checks


def _fingerprint(outcome):
    failure = outcome.failure
    return (
        str(outcome.check),
        outcome.passed,
        outcome.unknown,
        None
        if failure is None
        else (str(failure.input_route), str(failure.output_route), failure.rejected),
    )


def _pool_or_skip(pool: WorkerPool, outcomes):
    if outcomes is None:
        pool.close()
        pytest.skip("process pools unavailable in this environment")
    return outcomes


def _assert_no_leaked_children():
    # Every worker the pool (or a recovery) spawned must be reaped by
    # close(); a leaked child here would outlive the test session.
    assert multiprocessing.active_children() == []


def test_killed_worker_recovers_with_only_lost_chunks_redispatched():
    config, ghost, prop, invariants = _fullmesh_problem(MESH_SIZE)
    universe, checks = _pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,))

    # The targeted worker dies on receipt of its 2nd chunk: it has acked
    # exactly one, so the lost set is its remaining assignment.
    faults.install(
        FaultPlan(kill_worker_after_chunks=2, kill_worker_index=KILL_INDEX)
    )
    pool = WorkerPool(2)
    try:
        pooled = _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        stats = pool.stats()

        # Identical outcomes to the serial path, in order.
        assert [_fingerprint(o) for o in pooled] == [_fingerprint(o) for o in serial]

        # Exactly one death, exactly the lost chunks redispatched: the
        # dead worker acked 1 chunk of its assignment, so lost = rest.
        assigned = len(stats["per_worker_owners"][KILL_INDEX])
        assert assigned >= 2, stats  # the kill actually fired
        assert stats["worker_respawns"] == 1
        assert stats["chunks_redispatched"] == assigned - 1

        # NOT a full serial rerun: the pool produced the result itself,
        # nothing fell back and nothing was quarantined.
        assert stats["serial_fallbacks"] == 0
        assert stats["checks_quarantined"] == 0
        assert stats["quarantined_owners"] == []

        # The respawned worker is a full citizen: a second run is clean.
        second = pool.run(checks, config, universe, (ghost,))
        assert second is not None
        assert pool.worker_respawns == 1  # unchanged
        assert [_fingerprint(o) for o in second] == [_fingerprint(o) for o in serial]
    finally:
        pool.close()
    _assert_no_leaked_children()


def test_chunk_that_kills_twice_is_quarantined():
    config, ghost, prop, invariants = _fullmesh_problem(MESH_SIZE)
    universe, checks = _pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,))

    # Worker 0 dies on its *first* chunk, twice: the same chunk is blamed
    # for both deaths and must be quarantined to in-process execution
    # rather than killing a third incarnation.
    faults.install(
        FaultPlan(kill_worker_after_chunks=1, kill_worker_index=0, kill_times=2)
    )
    pool = WorkerPool(2)
    try:
        pooled = _pool_or_skip(pool, pool.run(checks, config, universe, (ghost,)))
        stats = pool.stats()
        assert [_fingerprint(o) for o in pooled] == [_fingerprint(o) for o in serial]
        assert stats["worker_respawns"] == 2
        assert stats["checks_quarantined"] > 0
        assert len(stats["quarantined_owners"]) == 1
        assert stats["serial_fallbacks"] == 0

        # The quarantine is sticky: the next run partitions the owner out
        # before dispatch (more quarantined checks, no new deaths).
        quarantined_before = stats["checks_quarantined"]
        second = pool.run(checks, config, universe, (ghost,))
        assert second is not None
        assert [_fingerprint(o) for o in second] == [_fingerprint(o) for o in serial]
        assert pool.worker_respawns == 2  # unchanged
        assert pool.checks_quarantined > quarantined_before
    finally:
        pool.close()
    _assert_no_leaked_children()


def test_verify_safety_reports_recovery_as_degradation():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    faults.install(FaultPlan(kill_worker_after_chunks=2, kill_worker_index=0))
    pool = WorkerPool(2)
    try:
        report = verify_safety(config, prop, invariants, ghosts=(ghost,), workers=pool)
        if pool.chunks_run == 0:
            pytest.skip("process pools unavailable in this environment")
        assert report.passed
        assert report.degradation is not None
        assert report.degradation.worker_respawns == 1
        assert report.degradation.chunks_redispatched >= 1
        assert report.degradation.degraded()
    finally:
        pool.close()
    _assert_no_leaked_children()


def test_clean_run_reports_no_degradation():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    with WorkerPool(2) as pool:
        report = verify_safety(config, prop, invariants, ghosts=(ghost,), workers=pool)
        if pool.chunks_run == 0:
            pytest.skip("process pools unavailable in this environment")
        assert report.passed
        assert report.degradation is not None
        assert not report.degradation.degraded()
    _assert_no_leaked_children()


def test_serial_fallback_is_observable_not_silent():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    pool = WorkerPool(2)
    pool.close()  # a closed pool refuses work: run_checks must fall back
    with pytest.warns(RuntimeWarning, match="degraded to the serial path"):
        report = verify_safety(config, prop, invariants, ghosts=(ghost,), workers=pool)
    assert report.passed
    assert report.degradation is not None
    assert report.degradation.serial_fallbacks == 1
    assert report.degradation.reasons
    _assert_no_leaked_children()


def test_exception_in_check_propagates_and_pool_survives():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    universe, checks = _pieces(config, ghost, prop, invariants)
    victim = next(c for c in checks if check_owner(c) == "R1")
    faults.install(FaultPlan(raise_in_check_match=str(victim)))
    pool = WorkerPool(2)
    try:
        with pytest.raises(faults.FaultInjected):
            outcomes = pool.run(checks, config, universe, (ghost,))
            if outcomes is None:
                pytest.skip("process pools unavailable in this environment")
        # A genuine check exception is not a crash: no respawn happened,
        # and the pool still serves later runs.  (Workers keep their
        # spawn-time fault plan by design, so steer clear of the victim.)
        faults.reset()
        rest = [c for c in checks if check_owner(c) != "R1"]
        serial = run_checks(rest, config, universe, (ghost,))
        again = pool.run(rest, config, universe, (ghost,))
        assert again is not None
        assert [_fingerprint(o) for o in again] == [_fingerprint(o) for o in serial]
        assert pool.worker_respawns == 0
        assert pool.serial_fallbacks == 0
    finally:
        pool.close()
    _assert_no_leaked_children()
