"""Safety verification on the Figure 1 network (Table 2 end to end)."""

from __future__ import annotations

import pytest

from repro.bgp.topology import Edge
from repro.core.checks import CheckKind, generate_safety_checks
from repro.core.engine import Lightyear
from repro.core.properties import SafetyProperty
from repro.core.safety import verify_safety
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1

from tests.core.conftest import no_transit_invariants, no_transit_property


def test_no_transit_verifies(fig1_config, from_isp1):
    report = verify_safety(
        fig1_config,
        no_transit_property(),
        no_transit_invariants(fig1_config),
        ghosts=(from_isp1,),
    )
    assert report.passed, "\n".join(f.explain() for f in report.failures)
    assert not report.unknowns


def test_check_count_is_linear_in_edges(fig1_config, from_isp1):
    # 12 directed edges; every edge into a router gets an import check (9),
    # every edge out of a router gets an export check (9), plus implication.
    checks = generate_safety_checks(
        fig1_config,
        no_transit_invariants(fig1_config),
        Edge("R2", "ISP2"),
        Not(GhostIs("FromISP1")),
    )
    kinds = [c.kind for c in checks]
    assert kinds.count(CheckKind.IMPORT) == 9
    assert kinds.count(CheckKind.EXPORT) == 9
    assert kinds.count(CheckKind.ORIGINATE) == 0
    assert kinds.count(CheckKind.IMPLICATION) == 1
    assert len(checks) == 19


def test_buggy_tagging_fails_and_localises_to_r1(from_isp1):
    config = build_figure1(buggy_r1_tagging=True)
    report = verify_safety(
        config,
        no_transit_property(),
        no_transit_invariants(config),
        ghosts=(from_isp1,),
    )
    assert not report.passed
    failures = report.failures
    assert failures, "expected at least one failed check"
    blamed = {f.blamed_router for f in failures}
    assert blamed == {"R1"}
    # The witness demonstrates the exact bug: a low-MED route from ISP1
    # accepted without the transit community.
    witness = failures[0]
    assert witness.input_route.med <= 10
    assert witness.output_route is not None
    assert TRANSIT_COMMUNITY not in witness.output_route.communities
    assert witness.output_route.ghost_value("FromISP1") is True
    assert "ISP1-IN" in witness.blamed_policy


def test_missing_edge_invariant_fails_implication(fig1_config, from_isp1):
    # Forget to set the R2->ISP2 invariant: the key invariant alone does not
    # imply the property, and the implication check must catch it.
    from repro.core.properties import InvariantMap

    inv = InvariantMap(
        fig1_config.topology,
        default=Implies(GhostIs("FromISP1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    report = verify_safety(
        fig1_config, no_transit_property(), inv, ghosts=(from_isp1,)
    )
    assert not report.passed
    implication_failures = [
        f for f in report.failures if f.check.kind is CheckKind.IMPLICATION
    ]
    assert implication_failures
    witness = implication_failures[0]
    # A tagged FromISP1 route satisfies the invariant but not the property.
    assert witness.input_route.ghost_value("FromISP1") is True
    assert TRANSIT_COMMUNITY in witness.input_route.communities


def test_too_strong_invariant_fails_at_establishing_filter(fig1_config, from_isp1):
    # Claim that *no* FromISP1 route exists inside the network: R1's import
    # cannot establish that, and the failure localises to the ISP1 edge.
    from repro.core.properties import InvariantMap
    from repro.lang.predicates import Not as NotPred

    inv = InvariantMap(fig1_config.topology, default=NotPred(GhostIs("FromISP1")))
    report = verify_safety(
        fig1_config, no_transit_property(), inv, ghosts=(from_isp1,)
    )
    assert not report.passed
    blamed_edges = {f.check.edge for f in report.failures if f.check.edge}
    assert Edge("ISP1", "R1") in blamed_edges


def test_engine_facade_and_stats(fig1_config, from_isp1):
    engine = Lightyear(fig1_config, ghosts=(from_isp1,))
    inv = no_transit_invariants(fig1_config)
    report = engine.verify_safety(no_transit_property(), inv)
    assert report.passed
    assert engine.stats.num_checks == report.num_checks == 19
    assert engine.stats.max_vars > 0
    assert engine.stats.max_clauses > 0
    assert engine.stats.wall_time_s > 0


def test_parallel_checks_agree_with_sequential(fig1_config, from_isp1):
    inv = no_transit_invariants(fig1_config)
    seq = verify_safety(
        fig1_config, no_transit_property(), inv, ghosts=(from_isp1,)
    )
    par = verify_safety(
        fig1_config, no_transit_property(), inv, ghosts=(from_isp1,), parallel=4
    )
    assert seq.passed == par.passed
    assert seq.num_checks == par.num_checks


def test_engine_rejects_invalid_config():
    from repro.bgp.config import NetworkConfig
    from repro.bgp.topology import Topology

    topo = Topology()
    topo.add_router("R1")
    config = NetworkConfig(topo)  # R1 has no RouterConfig
    with pytest.raises(ValueError):
        Lightyear(config)


def test_report_summary_text(fig1_config, from_isp1):
    report = verify_safety(
        fig1_config,
        no_transit_property(),
        no_transit_invariants(fig1_config),
        ghosts=(from_isp1,),
    )
    text = report.summary()
    assert "PASSED" in text
    assert "19 local checks" in text


def test_ghost_free_safety_property(fig1_config):
    # A property that needs no ghosts: routes sent to ISP2 never carry the
    # internal transit community (R2's export filter drops them).
    prop = SafetyProperty(
        location=Edge("R2", "ISP2"),
        predicate=Not(HasCommunity(TRANSIT_COMMUNITY)),
        name="no-transit-community-leak",
    )
    from repro.core.properties import InvariantMap
    from repro.lang.predicates import TruePred

    inv = InvariantMap(fig1_config.topology, default=TruePred())
    inv.set_edge("R2", "ISP2", Not(HasCommunity(TRANSIT_COMMUNITY)))
    report = verify_safety(fig1_config, prop, inv)
    assert report.passed, "\n".join(f.explain() for f in report.failures)
