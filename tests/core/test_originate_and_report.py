"""Tests for Originate checks and report formatting."""

from __future__ import annotations

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.route import Community, Route
from repro.bgp.topology import Edge
from repro.core.checks import CheckKind, generate_safety_checks
from repro.core.liveness import verify_liveness
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.report import format_liveness_report, format_safety_report
from repro.core.safety import verify_safety
from repro.lang.predicates import HasCommunity, Not, TruePred
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1

from tests.core.conftest import customer_liveness_property


OWN = Community(65000, 9)


def _config_with_origination(tagged: bool):
    """R1 originates 8.8.0.0/16 toward ISP1, tagged (or not) with 65000:9."""
    config = build_figure1()
    communities = frozenset({OWN}) if tagged else frozenset()
    config.routers["R1"].neighbors["ISP1"].originated = (
        Route(prefix=Prefix.parse("8.8.0.0/16"), communities=communities),
    )
    return config


def _originated_tagged_problem(config):
    prop = SafetyProperty(
        location=Edge("R1", "ISP1"),
        predicate=TruePred(),
        name="originated-routes-tagged",
    )
    invariants = InvariantMap(config.topology, default=TruePred())
    invariants.set_edge("R1", "ISP1", HasCommunity(OWN))
    # The property itself is about the same edge.
    prop = SafetyProperty(
        location=Edge("R1", "ISP1"), predicate=HasCommunity(OWN), name="own-tag"
    )
    return prop, invariants


def test_originate_check_generated_only_when_routes_exist():
    config = _config_with_origination(tagged=True)
    prop, invariants = _originated_tagged_problem(config)
    checks = generate_safety_checks(config, invariants, prop.location, prop.predicate)
    originate = [c for c in checks if c.kind is CheckKind.ORIGINATE]
    assert [c.edge for c in originate] == [Edge("R1", "ISP1")]

    clean = build_figure1()
    checks2 = generate_safety_checks(clean, invariants, prop.location, prop.predicate)
    assert not [c for c in checks2 if c.kind is CheckKind.ORIGINATE]


def test_originate_check_passes_when_tagged():
    config = _config_with_origination(tagged=True)
    prop, invariants = _originated_tagged_problem(config)
    # All exported routes on R1->ISP1 must carry the tag too; R1 forwards
    # routes from other neighbors there, so restrict the node invariant.
    invariants.set_router("R1", HasCommunity(OWN))
    report = verify_safety(config, prop, invariants)
    # The import checks into R1 cannot establish HasCommunity(OWN) — this
    # invariant set is deliberately too strong; look only at the originate
    # outcome here.
    originate_outcomes = [
        o for o in report.outcomes if o.check.kind is CheckKind.ORIGINATE
    ]
    assert len(originate_outcomes) == 1
    assert originate_outcomes[0].passed


def test_originate_check_fails_when_untagged():
    config = _config_with_origination(tagged=False)
    prop, invariants = _originated_tagged_problem(config)
    report = verify_safety(config, prop, invariants)
    originate_failures = [
        f for f in report.failures if f.check.kind is CheckKind.ORIGINATE
    ]
    assert originate_failures
    witness = originate_failures[0]
    assert witness.input_route.prefix == Prefix.parse("8.8.0.0/16")
    assert OWN not in witness.input_route.communities
    assert "originated" in witness.explain()


# ---------------------------------------------------------------------------
# Report formatting
# ---------------------------------------------------------------------------


def test_format_safety_report_pass_and_verbose():
    config = build_figure1()
    prop = SafetyProperty(
        location=Edge("R2", "ISP2"),
        predicate=Not(HasCommunity(TRANSIT_COMMUNITY)),
        name="no-leak",
    )
    invariants = InvariantMap(config.topology, default=TruePred())
    invariants.set_edge("R2", "ISP2", Not(HasCommunity(TRANSIT_COMMUNITY)))
    report = verify_safety(config, prop, invariants)
    text = format_safety_report(report)
    assert "PASSED" in text
    verbose = format_safety_report(report, verbose=True)
    assert "check breakdown:" in verbose
    assert verbose.count("[ok  ]") == report.num_checks


def test_format_safety_report_failure_contains_explanation():
    config = build_figure1(buggy_r1_tagging=True)
    from repro.lang.ghost import GhostAttribute
    from tests.core.conftest import no_transit_invariants, no_transit_property

    ghost = GhostAttribute.source_tracker(
        "FromISP1", config.topology, [Edge("ISP1", "R1")]
    )
    report = verify_safety(
        config, no_transit_property(), no_transit_invariants(config), ghosts=(ghost,)
    )
    text = format_safety_report(report)
    assert "FAILED" in text
    assert "blamed router: R1" in text


def test_format_liveness_report():
    config = build_figure1()
    report = verify_liveness(config, customer_liveness_property())
    text = format_liveness_report(report, verbose=True)
    assert "PASSED" in text
    assert "no-interference at R2: ok" in text
    assert "no-interference at R3: ok" in text


def test_format_liveness_report_failure():
    config = build_figure1(buggy_r3_strip=True)
    report = verify_liveness(config, customer_liveness_property())
    text = format_liveness_report(report)
    assert "FAILED" in text
    assert "Customer->R3" in text
