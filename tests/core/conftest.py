"""Shared fixtures: the Figure 1 verification problem (Tables 2 and 3)."""

from __future__ import annotations

import pytest

from repro.bgp.topology import Edge
from repro.core.properties import InvariantMap, LivenessProperty, SafetyProperty
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not, PrefixIn
from repro.bgp.prefix import PrefixRange
from repro.workloads.figure1 import (
    CUSTOMER_PREFIX,
    TRANSIT_COMMUNITY,
    build_figure1,
)


@pytest.fixture
def fig1_config():
    return build_figure1()


@pytest.fixture
def from_isp1(fig1_config):
    return GhostAttribute.source_tracker(
        "FromISP1", fig1_config.topology, [Edge("ISP1", "R1")]
    )


def no_transit_property() -> SafetyProperty:
    """Table 2 end-to-end property: no ISP1 routes sent to ISP2."""
    return SafetyProperty(
        location=Edge("R2", "ISP2"),
        predicate=Not(GhostIs("FromISP1")),
        name="no-transit",
    )


def no_transit_invariants(config) -> InvariantMap:
    """Table 2 network invariants (the three-row structure)."""
    inv = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromISP1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    inv.set_edge("R2", "ISP2", Not(GhostIs("FromISP1")))
    return inv


def customer_prefixes() -> PrefixIn:
    return PrefixIn((PrefixRange(CUSTOMER_PREFIX, 8, 24),))


def customer_liveness_property() -> LivenessProperty:
    """Table 3: customer routes eventually reach ISP2."""
    has_cust = customer_prefixes()
    good = has_cust & Not(HasCommunity(TRANSIT_COMMUNITY))
    return LivenessProperty(
        location=Edge("R2", "ISP2"),
        predicate=has_cust,
        path=(
            Edge("Customer", "R3"),
            "R3",
            Edge("R3", "R2"),
            "R2",
            Edge("R2", "ISP2"),
        ),
        constraints=(has_cust, good, good, good, has_cust),
        name="customer-reaches-isp2",
    )
