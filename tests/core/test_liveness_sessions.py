"""Tests for session/universe reuse across the §5 liveness pipeline.

PR 3 threads one covering universe and one owner-keyed ``SessionPool``
through ``verify_liveness``: propagation checks, the final implication
(now discharged via ``run_checks`` instead of a hermetic bypass), and
every no-interference sub-proof share encodings.  The pinned claims:

* pooled/hoisted liveness is outcome-identical to the old fresh-solver,
  per-sub-proof-universe pipeline (pass and fail cases);
* the covering universe content-covers every universe a sub-step would
  have built for itself — including atoms that only appear in
  caller-supplied ``interference_invariants``;
* a warm pool re-verifies with zero marginal encoding;
* the implication check goes through the shared pool (the ``None``-owner
  session discharges it alongside the sub-proof implications);
* the process backend and the persistent ``WorkerPool`` agree with serial.
"""

from __future__ import annotations

import pytest

from repro.bgp.route import Community
from repro.core.checks import CheckKind, LocalCheck
from repro.core.liveness import (
    generate_propagation_checks,
    interference_properties,
    liveness_universe,
    verify_liveness,
)
from repro.core.parallel import WorkerPool
from repro.core.properties import InvariantMap
from repro.core.safety import build_universe, verify_safety
from repro.lang.predicates import HasCommunity, Implies
from repro.smt.solver import SessionPool
from repro.workloads.figure1 import build_figure1
from repro.workloads.fullmesh import build_full_mesh, full_mesh_liveness_property
from repro.workloads.wan import build_wan
from repro.workloads.wan_properties import (
    ip_reuse_liveness_problem,
    verify_ip_reuse_liveness_problems,
)

from tests.core.conftest import customer_liveness_property


def _outcome_fp(outcome):
    failure = outcome.failure
    return (
        str(outcome.check),
        outcome.passed,
        outcome.unknown,
        None
        if failure is None
        else (str(failure.input_route), str(failure.output_route), failure.rejected),
    )


def _liveness_fp(report):
    return (
        [_outcome_fp(o) for o in report.propagation_outcomes],
        _outcome_fp(report.implication_outcome),
        {
            router: [_outcome_fp(o) for o in rep.outcomes]
            for router, rep in report.interference_reports.items()
        },
    )


def _reference_liveness_fp(config, prop, interference_invariants=None, ghosts=()):
    """The pre-reuse pipeline: hermetic solvers, per-sub-proof universes."""
    universe = build_universe(
        config, None, [prop.predicate, *prop.constraints], ghosts
    )
    propagation = [
        check.run(config, universe, ghosts)
        for check in generate_propagation_checks(config, prop)
    ]
    implication = LocalCheck(
        kind=CheckKind.IMPLICATION,
        edge=None,
        location=prop.location,
        assumption=prop.constraints[-1],
        goal=prop.predicate,
        description=f"implication check at {prop.location}: C_n implies the property",
    ).run(config, universe, ghosts)
    interference = {}
    for router, safety_prop in interference_properties(prop).items():
        if interference_invariants and router in interference_invariants:
            inv = interference_invariants[router]
        else:
            inv = InvariantMap(config.topology, default=safety_prop.predicate)
        # universe=None: each sub-proof builds its own, as the old code did.
        interference[router] = verify_safety(config, safety_prop, inv, ghosts=ghosts)
    return (
        [_outcome_fp(o) for o in propagation],
        _outcome_fp(implication),
        {
            router: [_outcome_fp(o) for o in rep.outcomes]
            for router, rep in interference.items()
        },
    )


def test_pooled_liveness_matches_fresh_pipeline(fig1_config):
    prop = customer_liveness_property()
    pooled = verify_liveness(fig1_config, prop)
    assert pooled.passed
    assert _liveness_fp(pooled) == _reference_liveness_fp(fig1_config, prop)


def test_pooled_liveness_matches_fresh_pipeline_on_broken_network():
    config = build_figure1(buggy_r3_strip=True)
    prop = customer_liveness_property()
    pooled = verify_liveness(config, prop)
    assert not pooled.passed
    assert _liveness_fp(pooled) == _reference_liveness_fp(config, prop)


def test_liveness_shares_one_session_per_owner(fig1_config):
    pool = SessionPool()
    report = verify_liveness(fig1_config, customer_liveness_property(), sessions=pool)
    assert report.passed
    # Propagation + implication + two whole-network sub-proofs all drew
    # from the same pool: one session per owner for the entire pipeline.
    assert set(pool.keys()) == {"R1", "R2", "R3", None}
    assert pool.created == 4


def test_implication_check_goes_through_shared_pool(fig1_config):
    """Regression: the final implication used to bypass ``run_checks`` with
    a hermetic one-shot solver.  Now the ``None``-owner session discharges
    it together with the sub-proof implications: one liveness implication
    plus one per no-interference sub-proof (R3 and R2)."""
    pool = SessionPool()
    verify_liveness(fig1_config, customer_liveness_property(), sessions=pool)
    none_session = pool.peek(None)
    assert none_session is not None
    assert none_session.checks_discharged == 3


def test_warm_pool_liveness_adds_no_encoding():
    config = build_full_mesh(5)
    prop = full_mesh_liveness_property(5)
    pool = SessionPool()
    first = verify_liveness(config, prop, sessions=pool)
    assert first.passed
    warm_encoding = pool.total_encoding()
    sizes = pool.encoding_sizes()

    second = verify_liveness(config, prop, sessions=pool)
    assert second.passed
    assert pool.total_encoding() == warm_encoding
    assert pool.encoding_sizes() == sizes
    assert _liveness_fp(first) == _liveness_fp(second)


def test_liveness_universe_covers_subproof_universes(fig1_config):
    """Regression: the hoisted universe must content-cover every universe a
    no-interference sub-proof would have built for itself — including atoms
    that only occur in caller-supplied interference invariants."""
    prop = customer_liveness_property()
    extra = Community(777, 7)
    props = interference_properties(prop)
    custom = {}
    for router, safety_prop in props.items():
        custom[router] = InvariantMap(fig1_config.topology, default=safety_prop.predicate)
    # An invariant atom appearing nowhere in the property or constraints.
    custom["R3"].set_router(
        "R1", Implies(HasCommunity(extra), props["R3"].predicate)
    )

    hoisted = liveness_universe(fig1_config, prop, custom, ())
    assert extra in hoisted.communities

    for router, safety_prop in props.items():
        per_router = build_universe(
            fig1_config, custom[router], [safety_prop.predicate], ()
        )
        assert set(per_router.communities) <= set(hoisted.communities)
        assert set(per_router.asns) <= set(hoisted.asns)
        assert set(per_router.ghosts) <= set(hoisted.ghosts)

    # End to end: with the hoisted universe the custom-atom invariant must
    # lower without a missing-atom KeyError, sharing one pool throughout.
    report = verify_liveness(fig1_config, prop, interference_invariants=custom)
    fp = _reference_liveness_fp(fig1_config, prop, interference_invariants=custom)
    assert _liveness_fp(report) == fp


def test_liveness_process_backend_agrees_with_serial(fig1_config):
    prop = customer_liveness_property()
    serial = verify_liveness(fig1_config, prop)
    process = verify_liveness(fig1_config, prop, parallel=2, backend="process")
    assert _liveness_fp(process) == _liveness_fp(serial)


def test_liveness_with_worker_pool_agrees_and_persists():
    config = build_full_mesh(4)
    prop = full_mesh_liveness_property(4)
    serial = verify_liveness(config, prop)
    with WorkerPool(2) as pool:
        first = verify_liveness(config, prop, workers=pool)
        if pool.chunks_run == 0:
            pytest.skip("process pools unavailable in this environment")
        assert _liveness_fp(first) == _liveness_fp(serial)
        second = verify_liveness(config, prop, workers=pool)
        assert _liveness_fp(second) == _liveness_fp(serial)
        # The whole second pipeline re-solved against existing encodings.
        assert all(g == (0, 0) for g in pool.last_encoding_growth.values())


def test_hoisted_wan_liveness_sweep_matches_per_region_runs():
    wan = build_wan(regions=3, routers_per_region=3, peers_per_edge=1)
    pool = SessionPool()
    hoisted = verify_ip_reuse_liveness_problems(wan, sessions=pool)
    assert len(hoisted) == wan.regions
    for region, (problem, report) in enumerate(hoisted):
        solo_problem = ip_reuse_liveness_problem(wan, region)
        solo = verify_liveness(
            wan.config,
            solo_problem.property,
            interference_invariants=solo_problem.interference_invariants,
            ghosts=(solo_problem.ghost,),
        )
        assert report.passed == solo.passed
        assert report.num_checks == solo.num_checks
        assert _liveness_fp(report) == _liveness_fp(solo)
    # The sweep shared one pool: a single session per owner overall.
    assert pool.created == len(set(wan.config.topology.routers)) + 1
