"""Tests for incremental re-verification after per-router config edits."""

from __future__ import annotations

import copy

from repro.bgp.policy import (
    AddCommunity,
    Disposition,
    MatchCommunity,
    MatchPrefix,
    RouteMap,
    RouteMapClause,
)
from repro.bgp.prefix import Prefix, PrefixRange
from repro.core.incremental import IncrementalVerifier
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1

from tests.core.conftest import no_transit_invariants, no_transit_property


def _verifier(config, from_isp1):
    return IncrementalVerifier(
        config,
        no_transit_property(),
        no_transit_invariants(config),
        ghosts=(from_isp1,),
    )


def test_initial_run_executes_all_checks(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    result = v.verify()
    assert result.report.passed
    assert result.rerun_checks == 19
    assert result.cached_checks == 0


def test_noop_reverify_reuses_everything(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    result = v.reverify(build_figure1())  # identical configuration
    assert result.report.passed
    assert result.rerun_checks == 0
    assert result.cached_checks == 19
    assert result.reuse_fraction == 1.0


def test_single_router_edit_reruns_only_its_checks(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()

    # Edit R3's customer import (a benign tweak: extra deny of a bogon).
    updated = build_figure1()
    old_map = updated.routers["R3"].neighbors["Customer"].import_map
    new_clauses = (
        RouteMapClause(
            1,
            Disposition.DENY,
            matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
        ),
    ) + old_map.clauses
    updated.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN", new_clauses
    )

    result = v.reverify(updated)
    assert result.report.passed
    # R3 owns: imports on Customer->R3, R1->R3, R2->R3 and exports on
    # R3->Customer, R3->R1, R3->R2 = 6 checks.
    assert result.rerun_checks == 6
    assert result.cached_checks == 13


def test_breaking_edit_detected_incrementally(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    assert v.verify().report.passed

    # R2 starts re-tagging... er, stripping the transit community on the
    # iBGP import from R1 — breaking the "no filter strips 100:1" invariant.
    updated = build_figure1()
    from repro.bgp.policy import DeleteCommunity

    updated.routers["R2"].neighbors["R1"].import_map = RouteMap(
        "STRIP",
        (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
    )
    result = v.reverify(updated)
    assert not result.report.passed
    assert result.rerun_checks == 6
    blamed = {f.blamed_router for f in result.report.failures}
    assert blamed == {"R2"}

    # Reverting the edit re-runs R2's checks again and passes.
    result2 = v.reverify(build_figure1())
    assert result2.report.passed
    assert result2.rerun_checks == 6


def test_universe_not_rebuilt_when_nothing_changed(fig1_config, from_isp1):
    """Regression: reverify used to rebuild the universe (and the check
    list) unconditionally; with unchanged digests both must be reused."""
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    assert v.universe_builds == 1
    universe = v._universe
    groups = {owner: id(group) for owner, group in v._checks_by_owner.items()}

    v.reverify(build_figure1())
    assert v.universe_builds == 1
    assert v._universe is universe  # same object, not an equal rebuild
    # Every owner group object survives untouched — nothing regenerated.
    assert {o: id(g) for o, g in v._checks_by_owner.items()} == groups


def test_universe_object_kept_across_content_preserving_edits(fig1_config, from_isp1):
    """A policy edit that mentions no new communities/ASNs rescans but
    keeps the same universe object, so value-keyed caches stay warm."""
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    universe = v._universe

    updated = build_figure1()
    old_map = updated.routers["R3"].neighbors["Customer"].import_map
    updated.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN",
        (
            RouteMapClause(
                1,
                Disposition.DENY,
                matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
            ),
        )
        + old_map.clauses,
    )
    result = v.reverify(updated)
    assert result.rerun_checks == 6
    assert v.universe_builds == 1
    assert v._universe is universe


def test_universe_rebuilt_when_edit_mentions_new_community(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()

    updated = build_figure1()
    from repro.bgp.route import Community

    old_map = updated.routers["R3"].neighbors["Customer"].import_map
    updated.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN",
        old_map.clauses[:-1]
        + (
            RouteMapClause(
                old_map.clauses[-1].seq,
                old_map.clauses[-1].disposition,
                old_map.clauses[-1].matches,
                old_map.clauses[-1].actions + (AddCommunity(Community(999, 9)),),
            ),
        ),
    )
    result = v.reverify(updated)
    assert v.universe_builds == 2  # the universe content genuinely changed
    assert Community(999, 9) in v._universe.communities
    assert result.rerun_checks == 6
    assert result.report.passed


def test_reverify_consults_only_the_edited_owners_checks(fig1_config, from_isp1):
    """The owner index makes reverify O(changed owner): a single-router
    edit examines exactly that router's check group, never the full cache."""
    v = _verifier(fig1_config, from_isp1)
    initial = v.verify()
    assert initial.checks_consulted == 19  # a full verify consults everything

    updated = build_figure1()
    old_map = updated.routers["R3"].neighbors["Customer"].import_map
    updated.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN",
        (
            RouteMapClause(
                1,
                Disposition.DENY,
                matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
            ),
        )
        + old_map.clauses,
    )
    result = v.reverify(updated)
    assert result.checks_consulted == 6  # R3's owner group, nothing else
    assert result.rerun_checks == 6
    assert result.cached_checks == 13


def test_noop_reverify_consults_no_checks(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    result = v.reverify(build_figure1())
    assert result.checks_consulted == 0


def test_topology_change_triggers_full_rerun(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()

    updated = build_figure1()
    updated.topology.add_external("ISP3")
    updated.set_external_asn("ISP3", 400)
    updated.topology.add_peering("R1", "ISP3")
    from repro.bgp.config import NeighborConfig

    updated.routers["R1"].add_neighbor(NeighborConfig("ISP3", 400))

    result = v.reverify(updated)
    assert result.cached_checks == 0
    assert result.rerun_checks == 21  # two more edges -> two more checks
