"""Tests for incremental re-verification after per-router config edits."""

from __future__ import annotations

import copy

from repro.bgp.policy import (
    AddCommunity,
    Disposition,
    MatchCommunity,
    MatchPrefix,
    RouteMap,
    RouteMapClause,
)
from repro.bgp.prefix import Prefix, PrefixRange
from repro.core.incremental import IncrementalVerifier
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1

from tests.core.conftest import no_transit_invariants, no_transit_property


def _verifier(config, from_isp1):
    return IncrementalVerifier(
        config,
        no_transit_property(),
        no_transit_invariants(config),
        ghosts=(from_isp1,),
    )


def test_initial_run_executes_all_checks(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    result = v.verify()
    assert result.report.passed
    assert result.rerun_checks == 19
    assert result.cached_checks == 0


def test_noop_reverify_reuses_everything(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    result = v.reverify(build_figure1())  # identical configuration
    assert result.report.passed
    assert result.rerun_checks == 0
    assert result.cached_checks == 19
    assert result.reuse_fraction == 1.0


def test_single_router_edit_reruns_only_its_checks(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()

    # Edit R3's customer import (a benign tweak: extra deny of a bogon).
    updated = build_figure1()
    old_map = updated.routers["R3"].neighbors["Customer"].import_map
    new_clauses = (
        RouteMapClause(
            1,
            Disposition.DENY,
            matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
        ),
    ) + old_map.clauses
    updated.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN", new_clauses
    )

    result = v.reverify(updated)
    assert result.report.passed
    # R3 owns: imports on Customer->R3, R1->R3, R2->R3 and exports on
    # R3->Customer, R3->R1, R3->R2 = 6 checks.
    assert result.rerun_checks == 6
    assert result.cached_checks == 13


def test_breaking_edit_detected_incrementally(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    assert v.verify().report.passed

    # R2 starts re-tagging... er, stripping the transit community on the
    # iBGP import from R1 — breaking the "no filter strips 100:1" invariant.
    updated = build_figure1()
    from repro.bgp.policy import DeleteCommunity

    updated.routers["R2"].neighbors["R1"].import_map = RouteMap(
        "STRIP",
        (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
    )
    result = v.reverify(updated)
    assert not result.report.passed
    assert result.rerun_checks == 6
    blamed = {f.blamed_router for f in result.report.failures}
    assert blamed == {"R2"}

    # Reverting the edit re-runs R2's checks again and passes.
    result2 = v.reverify(build_figure1())
    assert result2.report.passed
    assert result2.rerun_checks == 6


def test_universe_not_rebuilt_when_nothing_changed(fig1_config, from_isp1):
    """Regression: reverify used to rebuild the universe (and the check
    list) unconditionally; with unchanged digests both must be reused."""
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    assert v.universe_builds == 1
    universe = v._universe
    groups = {owner: id(group) for owner, group in v._checks_by_owner.items()}

    v.reverify(build_figure1())
    assert v.universe_builds == 1
    assert v._universe is universe  # same object, not an equal rebuild
    # Every owner group object survives untouched — nothing regenerated.
    assert {o: id(g) for o, g in v._checks_by_owner.items()} == groups


def test_universe_object_kept_across_content_preserving_edits(fig1_config, from_isp1):
    """A policy edit that mentions no new communities/ASNs rescans but
    keeps the same universe object, so value-keyed caches stay warm."""
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    universe = v._universe

    updated = build_figure1()
    old_map = updated.routers["R3"].neighbors["Customer"].import_map
    updated.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN",
        (
            RouteMapClause(
                1,
                Disposition.DENY,
                matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
            ),
        )
        + old_map.clauses,
    )
    result = v.reverify(updated)
    assert result.rerun_checks == 6
    assert v.universe_builds == 1
    assert v._universe is universe


def test_universe_rebuilt_when_edit_mentions_new_community(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()

    updated = build_figure1()
    from repro.bgp.route import Community

    old_map = updated.routers["R3"].neighbors["Customer"].import_map
    updated.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN",
        old_map.clauses[:-1]
        + (
            RouteMapClause(
                old_map.clauses[-1].seq,
                old_map.clauses[-1].disposition,
                old_map.clauses[-1].matches,
                old_map.clauses[-1].actions + (AddCommunity(Community(999, 9)),),
            ),
        ),
    )
    result = v.reverify(updated)
    assert v.universe_builds == 2  # the universe content genuinely changed
    assert Community(999, 9) in v._universe.communities
    assert result.rerun_checks == 6
    assert result.report.passed


def test_reverify_consults_only_the_edited_owners_checks(fig1_config, from_isp1):
    """The owner index makes reverify O(changed owner): a single-router
    edit examines exactly that router's check group, never the full cache."""
    v = _verifier(fig1_config, from_isp1)
    initial = v.verify()
    assert initial.checks_consulted == 19  # a full verify consults everything

    updated = build_figure1()
    old_map = updated.routers["R3"].neighbors["Customer"].import_map
    updated.routers["R3"].neighbors["Customer"].import_map = RouteMap(
        "CUST-IN",
        (
            RouteMapClause(
                1,
                Disposition.DENY,
                matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
            ),
        )
        + old_map.clauses,
    )
    result = v.reverify(updated)
    assert result.checks_consulted == 6  # R3's owner group, nothing else
    assert result.rerun_checks == 6
    assert result.cached_checks == 13


def test_noop_reverify_consults_no_checks(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    result = v.reverify(build_figure1())
    assert result.checks_consulted == 0


def test_external_asn_edit_invalidates_all_outcomes():
    """Regression: ``set_external_asn`` on an unchanged topology alters no
    router policy digest, yet changes the universe and AS-path semantics —
    the verifier used to reuse a stale universe and stale outcomes (and
    would have returned the pre-edit PASS here)."""
    from repro.bgp.topology import Edge
    from repro.core.properties import InvariantMap, SafetyProperty
    from repro.core.safety import verify_safety
    from repro.lang.predicates import AsPathHas
    from repro.workloads.fullmesh import (
        INTERNAL_AS,
        build_full_mesh,
        full_mesh_external_asn_edit,
    )

    n = 4
    config = build_full_mesh(n)
    # Exported routes on the eBGP edge R4->E4 carry our ASN (the eBGP
    # prepend) — an invariant sensitive to whether the edge *is* eBGP,
    # which is decided by E4's entry in ``external_asns``.
    prop = SafetyProperty(
        location=Edge("R4", "E4"),
        predicate=AsPathHas(INTERNAL_AS),
        name="exported-has-our-as",
    )
    invariants = InvariantMap(config.topology)
    invariants.set_edge("R4", "E4", AsPathHas(INTERNAL_AS))
    v = IncrementalVerifier(config, prop, invariants)
    initial = v.verify()
    assert initial.report.passed

    # E4 joins our AS: the session becomes iBGP, no prepend happens, and
    # the export check must now fail.  Only external_asns changed.
    edited = full_mesh_external_asn_edit(n, asn=INTERNAL_AS)
    assert edited.policy_digests() == config.policy_digests()
    result = v.reverify(edited)
    assert not result.report.passed
    assert result.cached_checks == 0  # every outcome recomputed
    fresh = verify_safety(edited, prop, invariants)
    assert result.report.passed == fresh.passed
    assert {str(f.check) for f in result.report.failures} == {
        str(f.check) for f in fresh.failures
    }

    # Reverting the ASN restores the pass — again via a full recompute.
    reverted = v.reverify(build_full_mesh(n))
    assert reverted.report.passed
    assert reverted.cached_checks == 0


def test_external_asn_edit_rescans_universe(fig1_config, from_isp1):
    """The universe is rebuilt on a network-level edit (external ASNs feed
    ``AttributeUniverse.from_config``), even with all router digests
    unchanged."""
    v = _verifier(fig1_config, from_isp1)
    v.verify()
    assert v.universe_builds == 1

    updated = build_figure1()
    updated.set_external_asn("ISP2", 999)
    result = v.reverify(updated)
    assert v.universe_builds == 2
    assert 999 in v._universe.asns
    assert result.cached_checks == 0


def test_conflict_budget_is_threaded_to_run_checks(
    monkeypatch, fig1_config, from_isp1
):
    """Regression: the CLI's --budget used to be dropped on the floor by
    the incremental path — ``run_checks`` never saw it."""
    import repro.core.incremental as mod

    captured = []
    real = mod.Scheduler.run

    def spy(self, *args, **kwargs):
        captured.append(kwargs.get("conflict_budget"))
        return real(self, *args, **kwargs)

    monkeypatch.setattr(mod.Scheduler, "run", spy)
    v = IncrementalVerifier(
        fig1_config,
        no_transit_property(),
        no_transit_invariants(fig1_config),
        ghosts=(from_isp1,),
        conflict_budget=4242,
    )
    v.verify()
    v.reverify(build_figure1())
    assert captured and all(budget == 4242 for budget in captured)


def test_engine_factory_borrows_engine_pools(fig1_config, from_isp1):
    from repro.core.engine import Lightyear

    with Lightyear(fig1_config, ghosts=(from_isp1,)) as engine:
        v = engine.incremental_safety(
            no_transit_property(), no_transit_invariants(fig1_config)
        )
        assert v.sessions is engine.sessions
        assert v.verify().report.passed
        assert len(engine.sessions) > 0
        v.close()  # must not own (or touch) any worker pool
        assert v._worker_pool is None


def test_topology_reset_spares_borrowed_session_pool(fig1_config, from_isp1):
    """A topology change must not clear a *borrowed* session pool: other
    verifiers sharing the engine's pool still want their encodings.  (An
    owned pool is still cleared — that path is memory hygiene only.)"""
    from repro.bgp.config import NeighborConfig
    from repro.core.engine import Lightyear

    with Lightyear(fig1_config, ghosts=(from_isp1,)) as engine:
        v = engine.incremental_safety(
            no_transit_property(), no_transit_invariants(fig1_config)
        )
        v.verify()
        encoded = engine.sessions.total_encoding()
        assert len(engine.sessions) > 0

        grown = build_figure1()
        grown.topology.add_external("ISP3")
        grown.set_external_asn("ISP3", 400)
        grown.topology.add_peering("R1", "ISP3")
        grown.routers["R1"].add_neighbor(NeighborConfig("ISP3", 400))
        result = v.reverify(grown)
        assert result.report.passed
        # The shared pool survived the reset (and only ever grew).
        assert len(engine.sessions) > 0
        assert engine.sessions.total_encoding() >= encoded

    # An owned pool, by contrast, is cleared and repopulated.
    owned = IncrementalVerifier(
        build_figure1(),
        no_transit_property(),
        no_transit_invariants(fig1_config),
        ghosts=(from_isp1,),
    )
    owned.verify()
    pool = owned.sessions
    owned.reverify(grown)
    assert owned.sessions is pool  # same pool object, repopulated


def test_network_digest_key_cannot_collide_with_router_names():
    """The network-level digest entry is a non-string sentinel, so even a
    router literally named "__network__" keeps its own digest slot."""
    from repro.bgp.config import NetworkConfig, RouterConfig
    from repro.bgp.topology import Topology
    from repro.core.incremental import NETWORK_DIGEST_KEY, config_digests

    topo = Topology()
    topo.add_router("__network__")
    topo.add_router("R1")
    topo.add_peering("__network__", "R1")
    config = NetworkConfig(topo)
    config.add_router_config(RouterConfig("__network__", 65000))
    config.add_router_config(RouterConfig("R1", 65000))

    digests = config_digests(config)
    assert NETWORK_DIGEST_KEY in digests
    assert "__network__" in digests
    assert digests[NETWORK_DIGEST_KEY] != digests["__network__"]


def test_topology_change_triggers_full_rerun(fig1_config, from_isp1):
    v = _verifier(fig1_config, from_isp1)
    v.verify()

    updated = build_figure1()
    updated.topology.add_external("ISP3")
    updated.set_external_asn("ISP3", 400)
    updated.topology.add_peering("R1", "ISP3")
    from repro.bgp.config import NeighborConfig

    updated.routers["R1"].add_neighbor(NeighborConfig("ISP3", 400))

    result = v.reverify(updated)
    assert result.cached_checks == 0
    assert result.rerun_checks == 21  # two more edges -> two more checks
