"""Tests for automatic invariant inference (the §8 extension)."""

from __future__ import annotations

import pytest

from repro.bgp.policy import AddCommunity, RouteMap, RouteMapClause
from repro.bgp.route import Community
from repro.bgp.topology import Edge
from repro.core.inference import (
    candidate_communities,
    infer_safety_invariants,
)
from repro.core.safety import verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, Not
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1
from repro.workloads.fullmesh import build_full_mesh

from tests.core.conftest import no_transit_property


def _setup(config):
    ghost = GhostAttribute.source_tracker(
        "FromISP1", config.topology, [Edge("ISP1", "R1")]
    )
    return ghost, no_transit_property()


def test_candidates_prioritise_source_edge_communities():
    config = build_figure1()
    ghost, __ = _setup(config)
    candidates = candidate_communities(config, ghost)
    assert candidates[0] == TRANSIT_COMMUNITY


def test_inference_finds_the_tracking_community():
    config = build_figure1()
    ghost, prop = _setup(config)
    result = infer_safety_invariants(config, prop, ghost)
    assert result.found
    assert result.winner.community == TRANSIT_COMMUNITY
    assert "inferred" in result.summary()


def test_inferred_invariants_actually_verify():
    config = build_figure1()
    ghost, prop = _setup(config)
    result = infer_safety_invariants(config, prop, ghost)
    invariants = result.invariants(config)
    report = verify_safety(config, prop, invariants, ghosts=(ghost,))
    assert report.passed


def test_inference_fails_on_buggy_network_with_counterexamples():
    config = build_figure1(buggy_r1_tagging=True)
    ghost, prop = _setup(config)
    result = infer_safety_invariants(config, prop, ghost)
    assert not result.found
    assert result.attempts
    # Every rejected candidate is refuted by concrete counterexamples.
    assert all(a.failures for a in result.attempts if not a.passed)
    with pytest.raises(LookupError):
        result.invariants(config)
    assert "no candidate" in result.summary()


def test_inference_skips_decoy_communities():
    # Add a decoy community on an unrelated filter; the search must still
    # land on the real tracking community.
    config = build_figure1()
    decoy = Community(42, 42)
    config.routers["R3"].neighbors["R2"].export_map = RouteMap(
        "DECOY", (RouteMapClause(10, actions=(AddCommunity(decoy),)),)
    )
    ghost, prop = _setup(config)
    result = infer_safety_invariants(config, prop, ghost)
    assert result.found
    assert result.winner.community == TRANSIT_COMMUNITY


def test_inference_on_full_mesh():
    config = build_full_mesh(6)
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    from repro.core.properties import SafetyProperty

    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    result = infer_safety_invariants(config, prop, ghost)
    assert result.found
    assert result.winner.community == TRANSIT_COMMUNITY


def test_max_candidates_bound_respected():
    config = build_figure1()
    ghost, prop = _setup(config)
    result = infer_safety_invariants(config, prop, ghost, max_candidates=0)
    assert not result.found
    assert result.attempts == []
