"""The verification execution backends must be interchangeable.

Three pillars:

* shared-encoding :class:`CheckSession` reuse (the serial default) returns
  outcomes identical to hermetic fresh-solver checks on the fullmesh
  workload — including counterexample witnesses on broken networks;
* the process backend returns the same outcomes in the same order as the
  serial path (or falls back to it where process pools are unavailable);
* job-count resolution (``auto``, integers, serial forcing) behaves as the
  CLI contract promises.
"""

from __future__ import annotations

import os

import pytest

from repro.bgp.policy import RouteMap, RouteMapClause, DeleteCommunity
from repro.bgp.topology import Edge
from repro.core.checks import check_owner, generate_safety_checks
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.safety import build_universe, resolve_jobs, run_checks, verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.workloads.fullmesh import TRANSIT_COMMUNITY, build_full_mesh


def _fullmesh_problem(n: int):
    config = build_full_mesh(n)
    ghost = GhostAttribute.source_tracker("FromE1", config.topology, [Edge("E1", "R1")])
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    return config, ghost, prop, invariants


def _outcome_fingerprint(outcome):
    failure = outcome.failure
    return (
        str(outcome.check),
        outcome.passed,
        outcome.unknown,
        None
        if failure is None
        else (str(failure.input_route), str(failure.output_route), failure.rejected),
    )


def _problem_pieces(config, ghost, prop, invariants):
    universe = build_universe(config, invariants, [prop.predicate], (ghost,))
    checks = generate_safety_checks(config, invariants, prop.location, prop.predicate)
    return universe, checks


def test_session_reuse_matches_fresh_solvers_on_fullmesh():
    config, ghost, prop, invariants = _fullmesh_problem(6)
    universe, checks = _problem_pieces(config, ghost, prop, invariants)
    # Reference: hermetic solver per check (no session).
    reference = [check.run(config, universe, (ghost,)) for check in checks]
    # Default serial path: one shared session per owner router.
    shared = run_checks(checks, config, universe, (ghost,))
    assert [_outcome_fingerprint(o) for o in shared] == [
        _outcome_fingerprint(o) for o in reference
    ]
    assert all(o.passed for o in shared)


def test_session_reuse_matches_fresh_solvers_on_broken_fullmesh():
    # Strip the transit tag inside the mesh: checks must fail identically,
    # with the same localisation, under both discharge strategies.
    config, ghost, prop, invariants = _fullmesh_problem(4)
    strip = RouteMap("STRIP", (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),))
    config.routers["R3"].neighbors["R1"].import_map = strip
    universe, checks = _problem_pieces(config, ghost, prop, invariants)
    reference = [check.run(config, universe, (ghost,)) for check in checks]
    shared = run_checks(checks, config, universe, (ghost,))
    assert [_outcome_fingerprint(o) for o in shared] == [
        _outcome_fingerprint(o) for o in reference
    ]
    assert any(not o.passed for o in shared)


def test_process_backend_agrees_with_serial():
    config, ghost, prop, invariants = _fullmesh_problem(5)
    universe, checks = _problem_pieces(config, ghost, prop, invariants)
    serial = run_checks(checks, config, universe, (ghost,), parallel=1)
    parallel = run_checks(
        checks, config, universe, (ghost,), parallel=2, backend="process"
    )
    assert [_outcome_fingerprint(o) for o in parallel] == [
        _outcome_fingerprint(o) for o in serial
    ]


def test_process_backend_ships_counterexamples_back():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    strip = RouteMap("STRIP", (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),))
    config.routers["R3"].neighbors["R1"].import_map = strip
    report = verify_safety(
        config, prop, invariants, ghosts=(ghost,), parallel=2, backend="process"
    )
    assert not report.passed
    assert report.failures, "counterexamples must survive the process boundary"
    assert any(f.blamed_router == "R3" for f in report.failures)


def test_verify_safety_parallel_auto_passes():
    config, ghost, prop, invariants = _fullmesh_problem(5)
    report = verify_safety(config, prop, invariants, ghosts=(ghost,), parallel="auto")
    assert report.passed


def test_thread_backend_still_works():
    config, ghost, prop, invariants = _fullmesh_problem(4)
    report = verify_safety(
        config, prop, invariants, ghosts=(ghost,), parallel=2, backend="thread"
    )
    assert report.passed


def test_resolve_jobs_contract():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(4) == 4
    # "auto" means the CPUs actually *available* to this process — the
    # process CPU count (3.13+) or the affinity mask where supported —
    # never more than the machine total.  (The per-source preference
    # order is pinned by the monkeypatched tests in test_exec_runtime.)
    auto = resolve_jobs("auto")
    assert auto >= 1
    assert auto <= (os.cpu_count() or auto)
    if getattr(os, "process_cpu_count", lambda: None)():
        assert auto == os.process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        assert auto == len(os.sched_getaffinity(0))
    else:
        assert auto == (os.cpu_count() or 1)
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_unknown_backend_rejected():
    config, ghost, prop, invariants = _fullmesh_problem(3)
    universe, checks = _problem_pieces(config, ghost, prop, invariants)
    with pytest.raises(ValueError):
        run_checks(checks, config, universe, (ghost,), backend="gpu")


def test_chunking_is_complete_and_owner_pure():
    from repro.core.parallel import chunk_by_owner

    config, ghost, prop, invariants = _fullmesh_problem(5)
    __, checks = _problem_pieces(config, ghost, prop, invariants)
    chunks = chunk_by_owner(checks)
    indices = sorted(i for chunk in chunks for i, __ in chunk)
    assert indices == list(range(len(checks)))
    for chunk in chunks:
        owners = {check_owner(check) for __, check in chunk}
        assert len(owners) == 1
