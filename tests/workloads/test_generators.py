"""Tests for the synthetic workload generators."""

from __future__ import annotations

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.route import Community, Route
from repro.bgp.simulator import Simulator
from repro.bgp.topology import Edge
from repro.workloads.fullmesh import TRANSIT_COMMUNITY, build_full_mesh
from repro.workloads.wan import REUSED_POOL, WanNetwork, build_wan, region_community


# ---------------------------------------------------------------------------
# Full mesh
# ---------------------------------------------------------------------------


def test_full_mesh_shape():
    config = build_full_mesh(5)
    topo = config.topology
    assert len(topo.routers) == 5
    assert len(topo.externals) == 5
    # Directed edges: 5*4 internal + 2*5 external = 30.
    assert len(topo.edges) == 5 * 4 + 10
    assert not config.validate()


def test_full_mesh_minimum_size():
    with pytest.raises(ValueError):
        build_full_mesh(1)


def test_full_mesh_policies_mirror_figure1():
    config = build_full_mesh(4)
    tagged = config.import_route(
        Edge("E1", "R1"), Route(prefix=Prefix.parse("99.0.0.0/8"))
    )
    assert TRANSIT_COMMUNITY in tagged.communities
    # R2 -> E2 export drops tagged routes.
    assert config.export_route(Edge("R2", "E2"), tagged) is None
    # Long prefixes are filtered at every eBGP import.
    long = Route(prefix=Prefix.parse("99.0.0.0/28"))
    assert config.import_route(Edge("E3", "R3"), long) is None


def test_full_mesh_simulation_no_transit():
    config = build_full_mesh(4)
    sim = Simulator(config)
    result = sim.run({"E1": [Route(prefix=Prefix.parse("99.0.0.0/8"))]})
    assert result.routes_forwarded_on(Edge("R2", "E2")) == []
    # The route still reaches R2 internally (tagged).
    assert result.selected("R2", Prefix.parse("99.0.0.0/8")) is not None


# ---------------------------------------------------------------------------
# WAN
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def wan() -> WanNetwork:
    return build_wan(regions=3, routers_per_region=3, peers_per_edge=2)


def test_wan_shape(wan):
    topo = wan.config.topology
    assert len(topo.routers) == 9
    assert len(wan.edge_routers) == 3
    assert len(wan.peers) == 6
    assert len(wan.datacenters) == 3
    assert not wan.config.validate()


def test_wan_region_metadata(wan):
    assert wan.region_of("W0-0") == 0
    assert wan.region_of("W2-1") == 2
    with pytest.raises(KeyError):
        wan.region_of("NOPE")
    dc, attach = wan.dc_edge_into(1)
    assert wan.datacenters[dc] == (1, attach)
    assert wan.documented_communities[0] == region_community(0)


def test_wan_peer_import_rejects_bogons(wan):
    peer = next(iter(wan.peers))
    router = wan.peers[peer]
    edge = Edge(peer, router)
    bogon = Route(prefix=Prefix.parse("10.1.0.0/16"))
    assert wan.config.import_route(edge, bogon) is None
    default = Route(prefix=Prefix.parse("0.0.0.0/0"))
    assert wan.config.import_route(edge, default) is None
    ok = Route(prefix=Prefix.parse("99.0.0.0/8"), communities={Community(1, 1)}, local_pref=500)
    imported = wan.config.import_route(edge, ok)
    assert imported is not None
    assert imported.communities == frozenset()
    assert imported.local_pref == 100


def test_wan_peer_import_rejects_bad_as(wan):
    peer = next(iter(wan.peers))
    edge = Edge(peer, wan.peers[peer])
    bad = Route(prefix=Prefix.parse("99.0.0.0/8"), as_path=(3000, 666))
    assert wan.config.import_route(edge, bad) is None


def test_wan_dc_import_tags_reused_prefixes(wan):
    dc, attach = wan.dc_edge_into(0)
    edge = Edge(dc, attach)
    reused = Route(prefix=Prefix.parse("172.16.1.0/24"), communities={Community(9, 9)})
    imported = wan.config.import_route(edge, reused)
    assert imported.communities == frozenset({region_community(0)})
    public = Route(prefix=Prefix.parse("99.0.0.0/8"), communities={Community(9, 9)})
    imported2 = wan.config.import_route(edge, public)
    assert imported2.communities == frozenset()


def test_wan_interregion_import_blocks_regional_communities(wan):
    # W0-0 and W1-0 are inter-region neighbors.
    edge = Edge("W0-0", "W1-0")
    assert wan.config.topology.has_edge(*edge.__dict__.values()) or edge in wan.config.topology.edges
    tagged = Route(
        prefix=Prefix.parse("172.16.1.0/24"),
        communities={region_community(0)},
    )
    assert wan.config.import_route(edge, tagged) is None
    untagged = Route(prefix=Prefix.parse("99.0.0.0/8"))
    assert wan.config.import_route(edge, untagged) is not None


def test_wan_peer_export_only_own_space(wan):
    peer = next(iter(wan.peers))
    router = wan.peers[peer]
    edge = Edge(router, peer)
    own = Route(prefix=Prefix.parse("8.8.1.0/24"))
    assert wan.config.export_route(edge, own) is not None
    other = Route(prefix=Prefix.parse("99.0.0.0/8"))
    assert wan.config.export_route(edge, other) is None


def test_wan_buggy_edge_router_accepts_bogons():
    wan = build_wan(regions=2, routers_per_region=2, buggy_edge_router="W0-0")
    peer = next(p for p, r in wan.peers.items() if r == "W0-0")
    bogon = Route(prefix=Prefix.parse("10.1.0.0/16"))
    assert wan.config.import_route(Edge(peer, "W0-0"), bogon) is not None
    # The other region's edge router is unaffected.
    other_peer = next(p for p, r in wan.peers.items() if r == "W1-0")
    assert wan.config.import_route(Edge(other_peer, "W1-0"), bogon) is None


def test_wan_adhoc_aspath_bug():
    wan = build_wan(regions=2, routers_per_region=2, adhoc_aspath_router="W1-0")
    peer = next(p for p, r in wan.peers.items() if r == "W1-0")
    bad = Route(prefix=Prefix.parse("99.0.0.0/8"), as_path=(3000, 666))
    assert wan.config.import_route(Edge(peer, "W1-0"), bad) is not None


def test_wan_wrong_community_bug():
    wan = build_wan(regions=2, routers_per_region=2, wrong_community_region=1)
    dc, attach = wan.dc_edge_into(1)
    reused = Route(prefix=Prefix.parse("172.16.1.0/24"))
    imported = wan.config.import_route(Edge(dc, attach), reused)
    assert region_community(1) not in imported.communities
    # The bogus community is not in the documented metadata.
    assert not imported.communities & set(wan.documented_communities.values())


def test_wan_reused_route_helper(wan):
    route = wan.reused_route()
    assert REUSED_POOL.contains(route.prefix)


def test_wan_simulation_reused_stays_in_region():
    wan = build_wan(regions=2, routers_per_region=2)
    dc, attach = wan.dc_edge_into(0)
    result = Simulator(wan.config).run({dc: [wan.reused_route()]})
    reused_prefix = wan.reused_route().prefix
    # Every router in region 0 hears it; no router in region 1 does.
    for router in wan.routers_by_region[0]:
        assert result.selected(router, reused_prefix) is not None
    for router in wan.routers_by_region[1]:
        assert result.selected(router, reused_prefix) is None
