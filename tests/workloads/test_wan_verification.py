"""End-to-end verification of the §6.1 use cases on the synthetic WAN."""

from __future__ import annotations

import pytest

from repro.core.liveness import verify_liveness
from repro.core.safety import verify_safety_family
from repro.workloads.wan import build_wan, region_community
from repro.workloads.wan_properties import (
    all_peering_problems,
    combined_peering_problem,
    ip_reuse_liveness_problem,
    ip_reuse_safety_problem,
    peering_problem,
    peering_quality_predicates,
)


@pytest.fixture(scope="module")
def wan():
    return build_wan(regions=3, routers_per_region=3, peers_per_edge=1)


def _verify_peering(wan, problem):
    return verify_safety_family(
        wan.config, problem.properties, problem.invariants, ghosts=(problem.ghost,)
    )


def test_no_bogons_from_peers_verifies(wan):
    problems = {p.name: p for p in all_peering_problems(wan)}
    report = _verify_peering(wan, problems["no-bogons"])
    assert report.passed, "\n".join(f.explain() for f in report.failures)


def test_all_eleven_peering_properties_verify(wan):
    problems = all_peering_problems(wan)
    assert len(problems) == 11
    for problem in problems:
        report = _verify_peering(wan, problem)
        assert report.passed, f"{problem.name}:\n" + "\n".join(
            f.explain() for f in report.failures
        )


def test_combined_property_also_verifies(wan):
    report = _verify_peering(wan, combined_peering_problem(wan))
    assert report.passed


def test_buggy_edge_router_caught_and_localised():
    wan = build_wan(regions=2, routers_per_region=2, buggy_edge_router="W0-0")
    problem = peering_problem(
        wan, "no-bogons", peering_quality_predicates(wan)["no-bogons"]
    )
    report = _verify_peering(wan, problem)
    assert not report.passed
    blamed = {f.blamed_router for f in report.failures}
    assert blamed == {"W0-0"}
    # Witness: a bogon-prefix route from a peer that the import accepted.
    witness = report.failures[0]
    assert witness.input_route.ghost_value("FromPeer") or (
        witness.output_route and witness.output_route.ghost_value("FromPeer")
    )


def test_adhoc_aspath_filter_caught():
    wan = build_wan(regions=2, routers_per_region=2, adhoc_aspath_router="W1-0")
    problems = {p.name: p for p in all_peering_problems(wan)}
    report = _verify_peering(wan, problems["no-invalid-as-path"])
    assert not report.passed
    assert {f.blamed_router for f in report.failures} == {"W1-0"}
    # The other ten properties are unaffected by this particular bug.
    report_bogons = _verify_peering(wan, problems["no-bogons"])
    assert report_bogons.passed


def test_ip_reuse_safety_verifies(wan):
    problem = ip_reuse_safety_problem(wan, region=0)
    report = verify_safety_family(
        wan.config, problem.properties, problem.invariants, ghosts=(problem.ghost,)
    )
    assert report.passed, "\n".join(f.explain() for f in report.failures)


def test_ip_reuse_safety_all_regions(wan):
    for region in range(wan.regions):
        problem = ip_reuse_safety_problem(wan, region=region)
        report = verify_safety_family(
            wan.config, problem.properties, problem.invariants, ghosts=(problem.ghost,)
        )
        assert report.passed, f"region {region}"


def test_wrong_community_bug_caught_by_reuse_safety():
    # The router tags reused routes with a community outside the documented
    # metadata; the region's local invariant (written from the metadata)
    # fails at the data-center import — the §6.1 finding.
    wan = build_wan(regions=2, routers_per_region=2, wrong_community_region=0)
    problem = ip_reuse_safety_problem(wan, region=0)
    report = verify_safety_family(
        wan.config, problem.properties, problem.invariants, ghosts=(problem.ghost,)
    )
    assert not report.passed
    dc, attach = wan.dc_edge_into(0)
    blamed = {f.blamed_router for f in report.failures}
    assert attach in blamed
    witness = report.failures[0]
    assert region_community(0) not in (witness.output_route or witness.input_route).communities


def test_ip_reuse_liveness_verifies(wan):
    problem = ip_reuse_liveness_problem(wan, region=1)
    report = verify_liveness(
        wan.config,
        problem.property,
        interference_invariants=problem.interference_invariants,
        ghosts=(problem.ghost,),
    )
    assert report.passed, "\n".join(f.explain() for f in report.failures)


def test_ip_reuse_liveness_broken_by_wrong_community():
    wan = build_wan(regions=2, routers_per_region=2, wrong_community_region=0)
    problem = ip_reuse_liveness_problem(wan, region=0)
    report = verify_liveness(
        wan.config,
        problem.property,
        interference_invariants=problem.interference_invariants,
        ghosts=(problem.ghost,),
    )
    assert not report.passed


def test_liveness_target_router_validation(wan):
    dc, attach = wan.dc_edge_into(0)
    with pytest.raises(ValueError):
        ip_reuse_liveness_problem(wan, region=0, target_router=attach)
    with pytest.raises(ValueError):
        ip_reuse_liveness_problem(wan, region=0, target_router="W1-0")
