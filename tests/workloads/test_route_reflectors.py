"""Route-reflector support: simulator rules and WAN-with-RR verification."""

from __future__ import annotations

import pytest

from repro.bgp.config import NeighborConfig, NetworkConfig, RouterConfig
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.bgp.simulator import Simulator
from repro.bgp.topology import Edge, Topology
from repro.core.liveness import verify_liveness
from repro.core.safety import verify_safety_family
from repro.workloads.wan import build_wan
from repro.workloads.wan_properties import (
    ip_reuse_liveness_problem,
    ip_reuse_safety_problem,
    peering_problem,
    peering_quality_predicates,
)


def _star_network(clients: int = 3) -> NetworkConfig:
    """One route reflector RR with client routers C0..Cn, C0 has external E."""
    topo = Topology()
    topo.add_router("RR")
    names = [f"C{i}" for i in range(clients)]
    for c in names:
        topo.add_router(c)
        topo.add_peering("RR", c)
    topo.add_external("E")
    topo.add_peering(names[0], "E")

    config = NetworkConfig(topo)
    config.set_external_asn("E", 100)
    rr = RouterConfig("RR", 65000, rr_clients=frozenset(names))
    for c in names:
        rr.add_neighbor(NeighborConfig(c, 65000))
    config.add_router_config(rr)
    for i, c in enumerate(names):
        rc = RouterConfig(c, 65000)
        rc.add_neighbor(NeighborConfig("RR", 65000))
        if i == 0:
            rc.add_neighbor(NeighborConfig("E", 100))
        config.add_router_config(rc)
    assert not config.validate()
    return config


def test_reflector_propagates_client_route_to_other_clients():
    config = _star_network()
    route = Route(prefix=Prefix.parse("99.0.0.0/8"))
    result = Simulator(config).run({"E": [route]})
    # C0 learns over eBGP, advertises to RR, RR reflects to C1 and C2.
    for router in ("C0", "RR", "C1", "C2"):
        assert result.selected(router, route.prefix) is not None, router


def test_without_reflector_clients_route_stays_at_hub():
    config = _star_network()
    config.routers["RR"].rr_clients = frozenset()  # plain iBGP speaker
    route = Route(prefix=Prefix.parse("99.0.0.0/8"))
    result = Simulator(config).run({"E": [route]})
    assert result.selected("RR", route.prefix) is not None
    # The full-mesh rule stops re-advertisement at the hub.
    assert result.selected("C1", route.prefix) is None
    assert result.selected("C2", route.prefix) is None


def test_rr_digest_differs_from_plain_router():
    with_clients = RouterConfig("RR", 65000, rr_clients=frozenset({"C0"}))
    without = RouterConfig("RR", 65000)
    assert with_clients.digest() != without.digest()


# ---------------------------------------------------------------------------
# WAN with route-reflector regions
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def rr_wan():
    return build_wan(
        regions=3, routers_per_region=4, peers_per_edge=1, route_reflectors=True
    )


def test_rr_wan_topology_is_star(rr_wan):
    topo = rr_wan.config.topology
    members = rr_wan.routers_by_region[0]
    # Clients peer only with the reflector inside the region.
    assert topo.has_edge(members[0], members[1])
    assert not topo.has_edge(members[1], members[2])
    assert rr_wan.config.routers[members[0]].rr_clients == frozenset(members[1:])


def test_rr_wan_reused_route_reaches_whole_region():
    wan = build_wan(regions=2, routers_per_region=4, route_reflectors=True)
    dc, attach = wan.dc_edge_into(0)
    result = Simulator(wan.config).run({dc: [wan.reused_route()]})
    prefix = wan.reused_route().prefix
    for router in wan.routers_by_region[0]:
        assert result.selected(router, prefix) is not None, router
    for router in wan.routers_by_region[1]:
        assert result.selected(router, prefix) is None, router


def test_rr_wan_peering_properties_verify(rr_wan):
    problem = peering_problem(
        rr_wan, "no-bogons", peering_quality_predicates(rr_wan)["no-bogons"]
    )
    report = verify_safety_family(
        rr_wan.config, problem.properties, problem.invariants, ghosts=(problem.ghost,)
    )
    assert report.passed


def test_rr_wan_ip_reuse_safety_verifies(rr_wan):
    problem = ip_reuse_safety_problem(rr_wan, region=1)
    report = verify_safety_family(
        rr_wan.config, problem.properties, problem.invariants, ghosts=(problem.ghost,)
    )
    assert report.passed, "\n".join(f.explain() for f in report.failures)


def test_rr_wan_ip_reuse_liveness_goes_via_reflector(rr_wan):
    # Target a client that is NOT adjacent to the DC attach router: the
    # witness path must route through the region's reflector.
    members = rr_wan.routers_by_region[0]
    dc, attach = rr_wan.dc_edge_into(0)
    target = next(m for m in members[1:] if m != attach)
    problem = ip_reuse_liveness_problem(rr_wan, region=0, target_router=target)
    assert members[0] in [l for l in problem.property.path if isinstance(l, str)]
    report = verify_liveness(
        rr_wan.config,
        problem.property,
        interference_invariants=problem.interference_invariants,
        ghosts=(problem.ghost,),
    )
    assert report.passed, "\n".join(f.explain() for f in report.failures)


def test_rr_wan_liveness_matches_simulation(rr_wan):
    # The verified liveness property is realised by the simulator.
    wan = build_wan(regions=2, routers_per_region=4, route_reflectors=True)
    members = wan.routers_by_region[0]
    dc, attach = wan.dc_edge_into(0)
    target = next(m for m in members[1:] if m != attach)
    problem = ip_reuse_liveness_problem(wan, region=0, target_router=target)
    report = verify_liveness(
        wan.config,
        problem.property,
        interference_invariants=problem.interference_invariants,
        ghosts=(problem.ghost,),
    )
    assert report.passed
    result = Simulator(wan.config).run({dc: [wan.reused_route()]})
    assert result.selected(target, wan.reused_route().prefix) is not None
