"""Tests for the random-topology generator and verification on it."""

from __future__ import annotations

import pytest

from repro.bgp.topology import Edge
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.safety import verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.workloads.fullmesh import TRANSIT_COMMUNITY
from repro.workloads.randomnet import build_random_network


def _no_transit_setup(config):
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    return ghost, prop, invariants


@pytest.mark.parametrize("model", ["gnp", "ba", "ring"])
def test_generator_produces_valid_connected_config(model):
    config = build_random_network(12, model=model, seed=7)
    assert len(config.topology.routers) == 12
    assert not config.validate()
    # Connectivity: every router reaches R1 over internal edges.
    internal = {(e.src, e.dst) for e in config.topology.internal_edges()}
    adjacency: dict[str, set[str]] = {}
    for src, dst in internal:
        adjacency.setdefault(src, set()).add(dst)
    seen = {"R1"}
    frontier = ["R1"]
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    assert seen == config.topology.routers


def test_generator_is_deterministic_per_seed():
    a = build_random_network(10, model="gnp", seed=3)
    b = build_random_network(10, model="gnp", seed=3)
    assert a.topology.edges == b.topology.edges
    c = build_random_network(10, model="gnp", seed=4)
    assert a.topology.edges != c.topology.edges


def test_generator_rejects_bad_inputs():
    with pytest.raises(ValueError):
        build_random_network(1)
    with pytest.raises(ValueError):
        build_random_network(5, model="mystery")


@pytest.mark.parametrize("model", ["gnp", "ba", "ring"])
def test_no_transit_verifies_on_random_topologies(model):
    config = build_random_network(10, model=model, seed=11)
    ghost, prop, invariants = _no_transit_setup(config)
    report = verify_safety(config, prop, invariants, ghosts=(ghost,))
    assert report.passed, "\n".join(f.explain() for f in report.failures)


def test_check_count_tracks_edge_count_not_topology():
    # Same router count, different shapes: checks == edges-into-routers +
    # edges-out-of-routers + 1, regardless of structure.
    for model in ("gnp", "ba", "ring"):
        config = build_random_network(14, model=model, seed=2)
        ghost, prop, invariants = _no_transit_setup(config)
        report = verify_safety(config, prop, invariants, ghosts=(ghost,))
        edges = config.topology.edges
        into = sum(1 for e in edges if config.topology.is_router(e.dst))
        out = sum(1 for e in edges if config.topology.is_router(e.src))
        assert report.num_checks == into + out + 1
        assert report.max_vars <= 30  # per-check size stays topology-free
