"""Tests for the deterministic fault-injection harness itself.

The chaos suite (test_recovery / test_deadlines) trusts this module to
fire exactly the configured faults; these tests pin the plan parsing,
per-worker slicing, and file-damage helpers it builds on.
"""

from __future__ import annotations

import time

import pytest

from repro.testing.faults import (
    FaultInjected,
    FaultPlan,
    active_plan,
    corrupt_file,
    install,
    on_check_start,
    reset,
    truncate_file,
)


@pytest.fixture(autouse=True)
def _clean_faults():
    reset()
    yield
    reset()


# ---------------------------------------------------------------------------
# Plan parsing (REPRO_FAULTS)
# ---------------------------------------------------------------------------


def test_from_env_parses_every_field():
    plan = FaultPlan.from_env(
        "kill_worker_after_chunks=2, kill_worker_index=1, kill_times=3,"
        "delay_check_s=0.25, delay_check_match=import check,"
        "hang_check_match=export check, raise_in_check_match=implication"
    )
    assert plan == FaultPlan(
        kill_worker_after_chunks=2,
        kill_worker_index=1,
        kill_times=3,
        delay_check_s=0.25,
        delay_check_match="import check",
        hang_check_match="export check",
        raise_in_check_match="implication",
    )


def test_from_env_empty_means_no_plan():
    assert FaultPlan.from_env("") is None
    assert FaultPlan.from_env("  ,  ") == FaultPlan()


def test_from_env_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown or malformed"):
        FaultPlan.from_env("kill_wroker_after_chunks=2")


def test_from_env_rejects_malformed_entries():
    with pytest.raises(ValueError, match="unknown or malformed"):
        FaultPlan.from_env("kill_worker_after_chunks")


def test_active_plan_reads_environment_once(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "kill_worker_after_chunks=1")
    reset()
    assert active_plan().kill_worker_after_chunks == 1
    # Cached: later env changes are not observed until the next reset().
    monkeypatch.setenv("REPRO_FAULTS", "kill_worker_after_chunks=7")
    assert active_plan().kill_worker_after_chunks == 1
    reset()
    assert active_plan().kill_worker_after_chunks == 7


def test_install_wins_over_environment(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "kill_worker_after_chunks=1")
    install(None)
    assert active_plan() is None
    install(FaultPlan(delay_check_s=0.1))
    assert active_plan().delay_check_s == 0.1


# ---------------------------------------------------------------------------
# Per-worker slicing and kill accounting
# ---------------------------------------------------------------------------


def test_worker_faults_strips_kill_for_other_workers():
    plan = FaultPlan(kill_worker_after_chunks=2, kill_worker_index=0)
    assert plan.worker_faults(0) == plan
    # The kill is worker-scoped; with nothing else set the slice is inert.
    assert plan.worker_faults(1) is None


def test_worker_faults_keeps_check_level_faults_everywhere():
    plan = FaultPlan(
        kill_worker_after_chunks=2, kill_worker_index=0, delay_check_s=0.5
    )
    other = plan.worker_faults(1)
    assert other.kill_worker_after_chunks is None
    assert other.delay_check_s == 0.5


def test_consume_kill_counts_down_then_disarms():
    plan = FaultPlan(kill_worker_after_chunks=1, kill_times=2)
    once = plan.consume_kill()
    assert once.kill_worker_after_chunks == 1
    assert once.kill_times == 1
    twice = once.consume_kill()
    assert twice.kill_worker_after_chunks is None
    # A disarmed plan ships no kill to any worker.
    assert twice.worker_faults(0) is None


def test_consume_kill_without_kill_is_identity():
    plan = FaultPlan(delay_check_s=0.1)
    assert plan.consume_kill() is plan


# ---------------------------------------------------------------------------
# Check-level hooks
# ---------------------------------------------------------------------------


def test_raise_in_check_fires_on_match_only():
    install(FaultPlan(raise_in_check_match="export check at R2"))
    on_check_start("import check at R1")  # no match: silent
    with pytest.raises(FaultInjected):
        on_check_start("export check at R2 on R2->E2")


def test_hang_sleeps_just_past_the_deadline():
    install(FaultPlan(hang_check_match="slow"))
    start = time.monotonic()
    on_check_start("slow check", deadline_abs=time.monotonic() + 0.05)
    elapsed = time.monotonic() - start
    assert 0.05 <= elapsed < 2.0


def test_hook_is_inert_without_a_plan():
    start = time.monotonic()
    on_check_start("any check at all")
    assert time.monotonic() - start < 0.5


# ---------------------------------------------------------------------------
# File damage helpers
# ---------------------------------------------------------------------------


def test_corrupt_file_flips_one_byte(tmp_path):
    target = tmp_path / "blob.bin"
    target.write_bytes(b"\x00\x01\x02\x03")
    corrupt_file(target, 2)
    assert target.read_bytes() == b"\x00\x01\xfd\x03"
    # XOR is an involution: damaging the same byte again restores it.
    corrupt_file(target, 2)
    assert target.read_bytes() == b"\x00\x01\x02\x03"


def test_corrupt_file_negative_offset_is_from_the_end(tmp_path):
    target = tmp_path / "blob.bin"
    target.write_bytes(b"abcd")
    corrupt_file(target, -1, flip=0x01)
    assert target.read_bytes() == b"abce"


def test_corrupt_file_refuses_empty_files(tmp_path):
    target = tmp_path / "empty.bin"
    target.write_bytes(b"")
    with pytest.raises(ValueError, match="empty"):
        corrupt_file(target, 0)


def test_truncate_file_keeps_a_prefix(tmp_path):
    target = tmp_path / "blob.bin"
    target.write_bytes(b"0123456789")
    truncate_file(target, 4)
    assert target.read_bytes() == b"0123"
    truncate_file(target, 0)
    assert target.read_bytes() == b""
