"""CLI tests for the on-disk workspace cache and the error paths (PR 5).

Pinned claims:

* ``lightyear reverify --cache DIR`` saves the base outcomes on first
  use, and a **fresh process** invocation loads them, skips the base run,
  and consults only the edited owner's checks (counters asserted from the
  CLI output);
* a cache whose config or spec fingerprint mismatches is rejected with a
  non-zero exit and a readable message — never silently reused, never a
  traceback;
* malformed specs, missing files, and corrupt caches all exit non-zero
  with ``error: ...`` messages.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bgp.configjson import config_to_json
from repro.cli import main
from repro.workloads.figure1 import build_figure1

SPEC = {
    "ghosts": [{"name": "FromISP1", "kind": "source", "sources": ["ISP1->R1"]}],
    "safety": [
        {
            "name": "no-transit",
            "location": "R2->ISP2",
            "predicate": {"kind": "not", "inner": {"kind": "ghost", "name": "FromISP1"}},
            "invariants": {
                "default": {
                    "kind": "implies",
                    "antecedent": {"kind": "ghost", "name": "FromISP1"},
                    "consequent": {"kind": "community", "community": "100:1"},
                },
                "overrides": {
                    "R2->ISP2": {
                        "kind": "not",
                        "inner": {"kind": "ghost", "name": "FromISP1"},
                    }
                },
            },
        }
    ],
}


def _benign_r3_edit(config):
    from repro.bgp.policy import Disposition, MatchPrefix, RouteMap, RouteMapClause
    from repro.bgp.prefix import PrefixRange

    neighbor = config.routers["R3"].neighbors["Customer"]
    deny = RouteMapClause(
        1,
        Disposition.DENY,
        matches=(MatchPrefix((PrefixRange.parse("192.168.0.0/16 le 32"),)),),
    )
    neighbor.import_map = RouteMap("CUST-IN", (deny,) + neighbor.import_map.clauses)


@pytest.fixture
def cache_setup(tmp_path):
    """base.json, edited.json (benign R3 edit), spec.json, cache dir."""
    base = build_figure1()
    (tmp_path / "base.json").write_text(config_to_json(base))
    edited = build_figure1()
    _benign_r3_edit(edited)
    (tmp_path / "edited.json").write_text(config_to_json(edited))
    (tmp_path / "spec.json").write_text(json.dumps(SPEC))
    return {
        "base": str(tmp_path / "base.json"),
        "edited": str(tmp_path / "edited.json"),
        "spec": str(tmp_path / "spec.json"),
        "cache": str(tmp_path / "cachedir"),
    }


# ---------------------------------------------------------------------------
# Cache round-trip
# ---------------------------------------------------------------------------


def test_reverify_cache_cold_then_warm(cache_setup, capsys):
    s = cache_setup
    # Cold: base run happens, cache is written.
    assert main(["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]]) == 0
    out = capsys.readouterr().out
    assert "base run skipped" not in out
    assert "reverify: consulted 6 of 19 checks (6 re-run, 13 reused)" in out
    assert (Path(s["cache"]) / "workspace.lyc").exists()

    # Warm: the base run is skipped, only R3's owner group is consulted.
    assert main(["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]]) == 0
    out = capsys.readouterr().out
    assert "base run skipped" in out
    assert "reverify: consulted 6 of 19 checks (6 re-run, 13 reused)" in out
    assert "PASSED" in out


def test_reverify_cache_fresh_process_round_trip(cache_setup):
    """The acceptance claim verbatim: a *fresh process* after a
    single-router edit loads the cache, skips the base run, and consults
    only that owner's checks."""
    s = cache_setup
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    args = [sys.executable, "-m", "repro.cli", "reverify",
            s["base"], s["edited"], s["spec"], "--cache", s["cache"]]
    first = subprocess.run(args, env=env, capture_output=True, text=True)
    assert first.returncode == 0, first.stderr
    assert "base run skipped" not in first.stdout
    second = subprocess.run(args, env=env, capture_output=True, text=True)
    assert second.returncode == 0, second.stderr
    assert "base run skipped" in second.stdout
    assert "reverify: consulted 6 of 19 checks (6 re-run, 13 reused)" in second.stdout


def test_verify_cache_cold_then_warm_consults_nothing(cache_setup, capsys):
    s = cache_setup
    assert main(["verify", s["base"], s["spec"], "--cache", s["cache"]]) == 0
    capsys.readouterr()
    assert main(["verify", s["base"], s["spec"], "--cache", s["cache"]]) == 0
    out = capsys.readouterr().out
    assert "cache: loaded outcomes" in out
    assert "cache: consulted 0 of 19 checks (0 re-run, 19 reused)" in out


def test_warm_cache_still_detects_breaking_edit(cache_setup, tmp_path, capsys):
    from repro.bgp.policy import DeleteCommunity, RouteMap, RouteMapClause
    from repro.workloads.figure1 import TRANSIT_COMMUNITY

    s = cache_setup
    assert main(["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]]) == 0
    capsys.readouterr()
    broken = build_figure1()
    broken.routers["R2"].neighbors["R1"].import_map = RouteMap(
        "STRIP", (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),)
    )
    (tmp_path / "broken.json").write_text(config_to_json(broken))
    code = main(
        ["reverify", s["base"], str(tmp_path / "broken.json"), s["spec"],
         "--cache", s["cache"]]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "base run skipped" in out
    assert "FAILED" in out
    assert "blamed router: R2" in out


# ---------------------------------------------------------------------------
# Mismatch rejection
# ---------------------------------------------------------------------------


def test_cache_rejects_spec_mismatch(cache_setup, tmp_path, capsys):
    s = cache_setup
    assert main(["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]]) == 0
    capsys.readouterr()
    other = json.loads(json.dumps(SPEC))
    other["safety"][0]["invariants"]["default"] = {"kind": "true"}
    (tmp_path / "other.json").write_text(json.dumps(other))
    code = main(
        ["reverify", s["base"], s["edited"], str(tmp_path / "other.json"),
         "--cache", s["cache"]]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "does not cover this spec" in err


def test_cache_rejects_config_digest_mismatch(cache_setup, capsys):
    s = cache_setup
    assert main(["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]]) == 0
    capsys.readouterr()
    # Re-run with the *edited* config as the base: digests differ.
    code = main(["reverify", s["edited"], s["base"], s["spec"], "--cache", s["cache"]])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "different configuration" in err


def test_cache_rejects_corrupt_file(cache_setup, capsys):
    s = cache_setup
    cache_dir = Path(s["cache"])
    cache_dir.mkdir()
    (cache_dir / "workspace.lyc").write_bytes(b"garbage bytes")
    code = main(["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err


# ---------------------------------------------------------------------------
# Spec/file error paths (no tracebacks, readable messages)
# ---------------------------------------------------------------------------


def test_malformed_json_spec_exits_readably(cache_setup, tmp_path, capsys):
    (tmp_path / "bad.json").write_text("{not json")
    code = main(["verify", cache_setup["base"], str(tmp_path / "bad.json")])
    assert code == 2
    err = capsys.readouterr().err
    assert "error: spec is not valid JSON" in err


def test_spec_missing_key_exits_readably(cache_setup, tmp_path, capsys):
    (tmp_path / "bad.json").write_text(json.dumps({"safety": [{"location": "R1"}]}))
    code = main(["verify", cache_setup["base"], str(tmp_path / "bad.json")])
    assert code == 2
    err = capsys.readouterr().err
    assert "error: malformed spec: missing required key 'predicate'" in err


def test_spec_wrong_shape_exits_readably(cache_setup, tmp_path, capsys):
    (tmp_path / "bad.json").write_text(json.dumps(["not", "an", "object"]))
    code = main(["verify", cache_setup["base"], str(tmp_path / "bad.json")])
    assert code == 2
    assert "error: spec must be a JSON object" in capsys.readouterr().err


def test_reverify_missing_file_exits_readably(cache_setup, capsys):
    code = main(["reverify", cache_setup["base"], cache_setup["edited"], "/nope.json"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_superset_cache_answers_only_for_the_requested_spec(
    cache_setup, tmp_path, capsys
):
    """A cache may hold more properties than the spec being run; the extra
    entries must not leak into the reverify output or the exit code."""
    s = cache_setup
    # Cache a two-property spec whose second property FAILS on Figure 1
    # (it claims every route at the property edge carries 100:1).
    two = json.loads(json.dumps(SPEC))
    two["safety"].append(
        {
            "name": "always-tagged",
            "location": "R2->ISP2",
            "predicate": {"kind": "community", "community": "100:1"},
            "invariants": {"default": {"kind": "true"}, "overrides": {}},
        }
    )
    (tmp_path / "two.json").write_text(json.dumps(two))
    assert (
        main(["verify", s["base"], str(tmp_path / "two.json"), "--cache", s["cache"]])
        == 1
    )
    capsys.readouterr()

    # Reverifying with only the passing property must load the cache, run
    # just that property, and exit 0 — the failing cached extra stays out.
    code = main(["reverify", s["base"], s["edited"], s["spec"], "--cache", s["cache"]])
    out = capsys.readouterr().out
    assert code == 0
    assert "base run skipped" in out
    assert "always-tagged" not in out
    assert out.count("reverify: consulted") == 1
