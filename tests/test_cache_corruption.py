"""Cache-corruption resilience: a damaged workspace cache is always
rejected with :class:`WorkspaceCacheError` — never a raw pickle error,
``EOFError``, or ``KeyError`` — and the CLI turns that into exit 2 with
a readable message.

Corruption is injected byte-by-byte with the fault harness's
:func:`repro.testing.faults.corrupt_file` / :func:`truncate_file`, so
the loader's hardening is asserted at many positions (header, middle,
tail), not just for an unreadable file.
"""

from __future__ import annotations

import json
import pickle
import shutil
from pathlib import Path

import pytest

from repro.bgp.configjson import config_to_json
from repro.bgp.topology import Edge
from repro.cli import main
from repro.core.properties import SafetyProperty
from repro.core.workspace import (
    CACHE_FORMAT,
    Workspace,
    WorkspaceCacheError,
    WorkspaceCacheMismatch,
)
from repro.lang.predicates import TruePred
from repro.testing.faults import corrupt_file, truncate_file
from repro.workloads.figure1 import build_figure1


@pytest.fixture(scope="module")
def saved_cache(tmp_path_factory):
    """A real saved workspace cache plus the config it was saved for."""
    tmp = tmp_path_factory.mktemp("cachesrc")
    config = build_figure1()
    prop = SafetyProperty(location=Edge("R2", "ISP2"), predicate=TruePred(), name="t")
    with Workspace(config) as ws:
        ws.verify(prop, ws.invariants())
        ws.save(tmp / "workspace.lyc")
    return tmp / "workspace.lyc", config


def _damaged_copy(saved: Path, tmp_path: Path, damage) -> Path:
    copy = tmp_path / saved.name
    shutil.copy(saved, copy)
    damage(copy)
    return copy


# Relative positions across the whole file: header, early body, middle,
# tail, and the last byte.
FLIP_POSITIONS = [0.0, 0.001, 0.25, 0.5, 0.75, 0.999, -1]


@pytest.mark.parametrize("position", FLIP_POSITIONS)
def test_bit_flip_anywhere_raises_cache_error(saved_cache, tmp_path, position):
    saved, config = saved_cache
    size = saved.stat().st_size
    offset = position if position == -1 else int(size * position)
    copy = _damaged_copy(saved, tmp_path, lambda p: corrupt_file(p, offset))
    with pytest.raises(WorkspaceCacheError):
        Workspace.load(copy, config=config)


@pytest.mark.parametrize("keep_fraction", [0.0, 0.001, 0.1, 0.5, 0.99])
def test_truncation_anywhere_raises_cache_error(saved_cache, tmp_path, keep_fraction):
    saved, config = saved_cache
    keep = int(saved.stat().st_size * keep_fraction)
    copy = _damaged_copy(saved, tmp_path, lambda p: truncate_file(p, keep))
    with pytest.raises(WorkspaceCacheError):
        Workspace.load(copy, config=config)


def test_unreadable_path_raises_cache_error(tmp_path):
    with pytest.raises(WorkspaceCacheError, match="cannot read"):
        Workspace.load(tmp_path / "does-not-exist.lyc")


def test_valid_pickle_wrong_shape_raises_cache_error(tmp_path):
    # A structurally valid pickle that is not a cache dict at all.
    target = tmp_path / "workspace.lyc"
    target.write_bytes(pickle.dumps(["not", "a", "cache"]))
    with pytest.raises(WorkspaceCacheError, match="not a workspace cache"):
        Workspace.load(target)


def test_valid_pickle_missing_keys_raises_cache_error(tmp_path):
    # Parses, has a format field, but the payload shape is wrong: the
    # loader's interpretation hardening must wrap the KeyError.
    target = tmp_path / "workspace.lyc"
    target.write_bytes(pickle.dumps({"format": CACHE_FORMAT}))
    with pytest.raises(WorkspaceCacheError, match="corrupt"):
        Workspace.load(target)


def test_future_format_raises_cache_error(tmp_path):
    target = tmp_path / "workspace.lyc"
    target.write_bytes(pickle.dumps({"format": CACHE_FORMAT + 1}))
    with pytest.raises(WorkspaceCacheError, match="format"):
        Workspace.load(target)


def test_previous_format_raises_cache_error(tmp_path):
    # A format-2 cache (pre solver-state) must be rejected readably, not
    # loaded with the solver-state section silently missing.
    target = tmp_path / "workspace.lyc"
    target.write_bytes(pickle.dumps({"format": CACHE_FORMAT - 1}))
    with pytest.raises(WorkspaceCacheError, match="format"):
        Workspace.load(target)


# ---------------------------------------------------------------------------
# Solver-state section: flips inside the pickled blob must be caught
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def solver_state_cache(tmp_path_factory):
    """A saved cache whose solver-state section is non-trivial."""
    from repro.smt.solver import SessionPool
    from repro.workloads.wan import build_wan
    from repro.workloads.wan_properties import verify_ip_reuse_safety_problems

    tmp = tmp_path_factory.mktemp("solverstate")
    wan = build_wan(regions=2, routers_per_region=3)
    pool = SessionPool()
    verify_ip_reuse_safety_problems(wan, sessions=pool)
    exports = pool.export_learnts()
    assert exports, "fixture workload must export learnt clauses"

    config = build_figure1()
    prop = SafetyProperty(location=Edge("R2", "ISP2"), predicate=TruePred(), name="t")
    with Workspace(config) as ws:
        ws.verify(prop, ws.invariants())
        # Stage real learnt exports so the persisted section has bulk.
        for key, (digest, clauses) in exports.items():
            ws.sessions.seed(key, digest, clauses)
        ws.save(tmp / "workspace.lyc")

    saved = tmp / "workspace.lyc"
    state = pickle.loads(saved.read_bytes())
    blob = state["solver_state"]
    assert len(blob) > 64, "solver-state blob unexpectedly small"
    offset = saved.read_bytes().index(blob)
    return saved, config, offset, len(blob)


@pytest.mark.parametrize("position", [0.0, 0.25, 0.5, 0.75, 0.999])
def test_bit_flip_inside_solver_state_raises_cache_error(
    solver_state_cache, tmp_path, position
):
    # The blob is length-prefixed bytes inside the outer pickle, so a flip
    # inside it can yield a blob that still unpickles "successfully" but
    # wrongly; the stored sha256 must catch every byte.
    saved, config, blob_offset, blob_len = solver_state_cache
    offset = blob_offset + int(blob_len * position)
    copy = _damaged_copy(saved, tmp_path, lambda p: corrupt_file(p, offset))
    with pytest.raises(WorkspaceCacheError):
        Workspace.load(copy, config=config)


def test_wrong_shape_solver_state_raises_cache_error(solver_state_cache, tmp_path):
    # A well-formed pickle of the wrong type in the slot (integrity sha
    # recomputed to match) exercises the shape check, not the sha check.
    import hashlib

    saved, config, __, __unused = solver_state_cache
    state = pickle.loads(saved.read_bytes())
    blob = pickle.dumps(["not", "a", "dict"])
    state["solver_state"] = blob
    state["solver_state_sha"] = hashlib.sha256(blob).hexdigest()
    target = tmp_path / "workspace.lyc"
    target.write_bytes(pickle.dumps(state))
    with pytest.raises(WorkspaceCacheError, match="solver-state"):
        Workspace.load(target, config=config)


def test_mismatch_is_a_cache_error_subtype():
    # CLI error handling catches WorkspaceCacheError; the mismatch class
    # must stay inside that hierarchy (and inside ValueError for main()).
    assert issubclass(WorkspaceCacheMismatch, WorkspaceCacheError)
    assert issubclass(WorkspaceCacheError, ValueError)


# ---------------------------------------------------------------------------
# CLI: corrupt caches exit 2 with a readable error
# ---------------------------------------------------------------------------

SPEC = {
    "safety": [
        {
            "name": "trivial",
            "location": "R2->ISP2",
            "predicate": {"kind": "true"},
            "invariants": {"default": {"kind": "true"}, "overrides": {}},
        }
    ]
}


@pytest.fixture
def cli_setup(tmp_path):
    config = build_figure1()
    (tmp_path / "base.json").write_text(config_to_json(config))
    (tmp_path / "spec.json").write_text(json.dumps(SPEC))
    cache_dir = tmp_path / "cachedir"
    return {
        "base": str(tmp_path / "base.json"),
        "spec": str(tmp_path / "spec.json"),
        "cache": str(cache_dir),
        "cache_file": cache_dir / "workspace.lyc",
    }


@pytest.mark.parametrize(
    "damage",
    [lambda p: corrupt_file(p, 0), lambda p: truncate_file(p, 16)],
    ids=["bit-flip", "truncate"],
)
def test_cli_corrupt_cache_exits_2(cli_setup, capsys, damage):
    s = cli_setup
    assert main(["verify", s["base"], s["spec"], "--cache", s["cache"]]) == 0
    capsys.readouterr()
    damage(s["cache_file"])
    code = main(["verify", s["base"], s["spec"], "--cache", s["cache"]])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "Traceback" not in err
