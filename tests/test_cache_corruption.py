"""Cache-corruption resilience: a damaged workspace cache is always
rejected with :class:`WorkspaceCacheError` — never a raw pickle error,
``EOFError``, or ``KeyError`` — and the CLI turns that into exit 2 with
a readable message.

Corruption is injected byte-by-byte with the fault harness's
:func:`repro.testing.faults.corrupt_file` / :func:`truncate_file`, so
the loader's hardening is asserted at many positions (header, middle,
tail), not just for an unreadable file.
"""

from __future__ import annotations

import json
import pickle
import shutil
from pathlib import Path

import pytest

from repro.bgp.configjson import config_to_json
from repro.bgp.topology import Edge
from repro.cli import main
from repro.core.properties import SafetyProperty
from repro.core.workspace import (
    CACHE_FORMAT,
    Workspace,
    WorkspaceCacheError,
    WorkspaceCacheMismatch,
)
from repro.lang.predicates import TruePred
from repro.testing.faults import corrupt_file, truncate_file
from repro.workloads.figure1 import build_figure1


@pytest.fixture(scope="module")
def saved_cache(tmp_path_factory):
    """A real saved workspace cache plus the config it was saved for."""
    tmp = tmp_path_factory.mktemp("cachesrc")
    config = build_figure1()
    prop = SafetyProperty(location=Edge("R2", "ISP2"), predicate=TruePred(), name="t")
    with Workspace(config) as ws:
        ws.verify(prop, ws.invariants())
        ws.save(tmp / "workspace.lyc")
    return tmp / "workspace.lyc", config


def _damaged_copy(saved: Path, tmp_path: Path, damage) -> Path:
    copy = tmp_path / saved.name
    shutil.copy(saved, copy)
    damage(copy)
    return copy


# Relative positions across the whole file: header, early body, middle,
# tail, and the last byte.
FLIP_POSITIONS = [0.0, 0.001, 0.25, 0.5, 0.75, 0.999, -1]


@pytest.mark.parametrize("position", FLIP_POSITIONS)
def test_bit_flip_anywhere_raises_cache_error(saved_cache, tmp_path, position):
    saved, config = saved_cache
    size = saved.stat().st_size
    offset = position if position == -1 else int(size * position)
    copy = _damaged_copy(saved, tmp_path, lambda p: corrupt_file(p, offset))
    with pytest.raises(WorkspaceCacheError):
        Workspace.load(copy, config=config)


@pytest.mark.parametrize("keep_fraction", [0.0, 0.001, 0.1, 0.5, 0.99])
def test_truncation_anywhere_raises_cache_error(saved_cache, tmp_path, keep_fraction):
    saved, config = saved_cache
    keep = int(saved.stat().st_size * keep_fraction)
    copy = _damaged_copy(saved, tmp_path, lambda p: truncate_file(p, keep))
    with pytest.raises(WorkspaceCacheError):
        Workspace.load(copy, config=config)


def test_unreadable_path_raises_cache_error(tmp_path):
    with pytest.raises(WorkspaceCacheError, match="cannot read"):
        Workspace.load(tmp_path / "does-not-exist.lyc")


def test_valid_pickle_wrong_shape_raises_cache_error(tmp_path):
    # A structurally valid pickle that is not a cache dict at all.
    target = tmp_path / "workspace.lyc"
    target.write_bytes(pickle.dumps(["not", "a", "cache"]))
    with pytest.raises(WorkspaceCacheError, match="not a workspace cache"):
        Workspace.load(target)


def test_valid_pickle_missing_keys_raises_cache_error(tmp_path):
    # Parses, has a format field, but the payload shape is wrong: the
    # loader's interpretation hardening must wrap the KeyError.
    target = tmp_path / "workspace.lyc"
    target.write_bytes(pickle.dumps({"format": CACHE_FORMAT}))
    with pytest.raises(WorkspaceCacheError, match="corrupt"):
        Workspace.load(target)


def test_future_format_raises_cache_error(tmp_path):
    target = tmp_path / "workspace.lyc"
    target.write_bytes(pickle.dumps({"format": CACHE_FORMAT + 1}))
    with pytest.raises(WorkspaceCacheError, match="format"):
        Workspace.load(target)


def test_mismatch_is_a_cache_error_subtype():
    # CLI error handling catches WorkspaceCacheError; the mismatch class
    # must stay inside that hierarchy (and inside ValueError for main()).
    assert issubclass(WorkspaceCacheMismatch, WorkspaceCacheError)
    assert issubclass(WorkspaceCacheError, ValueError)


# ---------------------------------------------------------------------------
# CLI: corrupt caches exit 2 with a readable error
# ---------------------------------------------------------------------------

SPEC = {
    "safety": [
        {
            "name": "trivial",
            "location": "R2->ISP2",
            "predicate": {"kind": "true"},
            "invariants": {"default": {"kind": "true"}, "overrides": {}},
        }
    ]
}


@pytest.fixture
def cli_setup(tmp_path):
    config = build_figure1()
    (tmp_path / "base.json").write_text(config_to_json(config))
    (tmp_path / "spec.json").write_text(json.dumps(SPEC))
    cache_dir = tmp_path / "cachedir"
    return {
        "base": str(tmp_path / "base.json"),
        "spec": str(tmp_path / "spec.json"),
        "cache": str(cache_dir),
        "cache_file": cache_dir / "workspace.lyc",
    }


@pytest.mark.parametrize(
    "damage",
    [lambda p: corrupt_file(p, 0), lambda p: truncate_file(p, 16)],
    ids=["bit-flip", "truncate"],
)
def test_cli_corrupt_cache_exits_2(cli_setup, capsys, damage):
    s = cli_setup
    assert main(["verify", s["base"], s["spec"], "--cache", s["cache"]]) == 0
    capsys.readouterr()
    damage(s["cache_file"])
    code = main(["verify", s["base"], s["spec"], "--cache", s["cache"]])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "Traceback" not in err
