"""Smoke tests for the runnable examples (PR 5 satellite).

The examples drifted silently before CI ran them; the full set runs as a
dedicated CI job (see ``.github/workflows/ci.yml``), and the two that the
quickstart/README story depends on — ``quickstart.py`` (the polymorphic
``Workspace.verify``) and ``incremental_reverification.py``
(``apply``/``reverify`` plus the on-disk cache) — are cheap enough to pin
in tier-1 as real subprocess runs.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def _run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize(
    "name", ["quickstart.py", "incremental_reverification.py"]
)
def test_example_runs_clean(name):
    proc = _run_example(name)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # The new-API examples must not trip their own deprecation shims.
    assert "DeprecationWarning" not in proc.stderr


def test_quickstart_exercises_polymorphic_verify():
    proc = _run_example("quickstart.py")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "Workspace totals" in proc.stdout
    assert "verified modularly" in proc.stdout


def test_incremental_example_exercises_cache_reload():
    proc = _run_example("incremental_reverification.py")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "cache reload:" in proc.stdout
    assert "6 checks consulted" in proc.stdout
