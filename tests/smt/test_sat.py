"""Unit and property tests for the CDCL SAT core."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SatSolver, _luby


def test_empty_formula_is_sat():
    s = SatSolver()
    assert s.solve() is True


def test_single_unit_clause():
    s = SatSolver()
    a = s.new_var()
    assert s.add_clause([a])
    assert s.solve() is True
    assert s.value(a) is True


def test_contradictory_units_unsat():
    s = SatSolver()
    a = s.new_var()
    s.add_clause([a])
    assert not s.add_clause([-a]) or s.solve() is False


def test_implication_chain_propagates():
    s = SatSolver()
    xs = [s.new_var() for _ in range(20)]
    s.add_clause([xs[0]])
    for i in range(19):
        s.add_clause([-xs[i], xs[i + 1]])
    assert s.solve() is True
    assert all(s.value(x) is True for x in xs)


def test_simple_conflict_requires_learning():
    s = SatSolver()
    a, b, c = (s.new_var() for _ in range(3))
    s.add_clause([a, b])
    s.add_clause([a, -b])
    s.add_clause([-a, c])
    s.add_clause([-a, -c])
    assert s.solve() is False


def test_pigeonhole_3_into_2_unsat():
    # p[i][j]: pigeon i in hole j.
    s = SatSolver()
    p = [[s.new_var() for _ in range(2)] for _ in range(3)]
    for i in range(3):
        s.add_clause([p[i][0], p[i][1]])
    for j in range(2):
        for i1, i2 in itertools.combinations(range(3), 2):
            s.add_clause([-p[i1][j], -p[i2][j]])
    assert s.solve() is False


def test_pigeonhole_4_into_4_sat():
    s = SatSolver()
    n = 4
    p = [[s.new_var() for _ in range(n)] for _ in range(n)]
    for i in range(n):
        s.add_clause(p[i])
    for j in range(n):
        for i1, i2 in itertools.combinations(range(n), 2):
            s.add_clause([-p[i1][j], -p[i2][j]])
    assert s.solve() is True
    # Check the model is a valid assignment of pigeons to distinct holes.
    holes = []
    for i in range(n):
        row = [j for j in range(n) if s.value(p[i][j])]
        assert row
        holes.append(row[0])


def test_tautological_clause_ignored():
    s = SatSolver()
    a = s.new_var()
    s.add_clause([a, -a])
    assert s.solve() is True


def test_duplicate_literals_collapse():
    s = SatSolver()
    a = s.new_var()
    s.add_clause([a, a, a])
    assert s.solve() is True
    assert s.value(a) is True


def test_assumptions_sat_and_unsat():
    s = SatSolver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([-a, b])
    assert s.solve(assumptions=[a]) is True
    assert s.value(b) is True
    s.reset_trail()
    s.add_clause([-b])
    assert s.solve(assumptions=[a]) is False


def test_conflict_budget_returns_none_or_answer():
    s = SatSolver()
    n = 8
    p = [[s.new_var() for _ in range(n - 1)] for _ in range(n)]
    for i in range(n):
        s.add_clause(p[i])
    for j in range(n - 1):
        for i1, i2 in itertools.combinations(range(n), 2):
            s.add_clause([-p[i1][j], -p[i2][j]])
    result = s.solve(conflict_budget=5)
    assert result is None or result is False


def test_luby_sequence_prefix():
    assert [_luby(i) for i in range(15)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


def _brute_force(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(bits[abs(l) - 1] == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


@st.composite
def cnf_instances(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    num_clauses = draw(st.integers(min_value=1, max_value=14))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


@settings(max_examples=150, deadline=None)
@given(cnf_instances())
def test_cdcl_matches_brute_force(instance):
    num_vars, clauses = instance
    s = SatSolver()
    lits = [s.new_var() for _ in range(num_vars)]
    assert all(abs(l) == i + 1 for i, l in enumerate(lits))
    for clause in clauses:
        s.add_clause(clause)
    expected = _brute_force(num_vars, clauses)
    got = s.solve()
    assert got is expected
    if got:
        # The returned model must satisfy every clause.
        for clause in clauses:
            assert any(s.value(l) for l in clause)
