"""Tests for DIMACS CNF import/export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.dimacs import DimacsProblem, export_solver, parse_dimacs, to_dimacs
from repro.smt.sat import SatSolver


SAMPLE = """\
c a tiny satisfiable instance
p cnf 3 3
1 -2 0
2 3 0
-1 0
"""


def test_parse_sample():
    problem = parse_dimacs(SAMPLE)
    assert problem.num_vars == 3
    assert problem.clauses == [[1, -2], [2, 3], [-1]]


def test_solve_sample():
    sat, model = parse_dimacs(SAMPLE).solve()
    assert sat
    assert model[1] is False
    assert model[2] is False  # 1 -2 forces -2 given -1
    assert model[3] is True


def test_unsat_instance():
    text = "p cnf 1 2\n1 0\n-1 0\n"
    sat, model = parse_dimacs(text).solve()
    assert not sat
    assert model is None


def test_parse_multiline_clause_and_missing_trailing_zero():
    text = "p cnf 3 1\n1 2\n3 0\np_extra_ignored? no"
    with pytest.raises(ValueError):
        parse_dimacs(text)
    ok = "p cnf 3 1\n1 2\n3"
    problem = parse_dimacs(ok)
    assert problem.clauses == [[1, 2, 3]]


@pytest.mark.parametrize(
    "bad",
    [
        "1 0",  # clause before header
        "p cnf x y\n",  # malformed header
        "p cnf 2 1\n5 0\n",  # literal out of range
        "",  # no header at all
    ],
)
def test_parse_errors(bad):
    with pytest.raises(ValueError):
        parse_dimacs(bad)


def test_to_dimacs_roundtrip():
    problem = parse_dimacs(SAMPLE)
    text = to_dimacs(problem.num_vars, problem.clauses, comment="roundtrip\ntest")
    again = parse_dimacs(text)
    assert again.num_vars == problem.num_vars
    assert again.clauses == problem.clauses
    assert text.startswith("c roundtrip\nc test\n")


def test_export_solver_preserves_units():
    solver = SatSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a])  # becomes a level-0 assignment, not a clause
    solver.add_clause([-a, b])
    text = export_solver(solver, comment="unit test")
    problem = parse_dimacs(text)
    sat, model = problem.solve()
    assert sat
    assert model[a] is True and model[b] is True


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(1, 5))
    clauses = draw(
        st.lists(
            st.lists(
                st.integers(1, num_vars).map(
                    lambda v: v  # sign applied below
                ),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=10,
        )
    )
    signed = [
        [lit if draw(st.booleans()) else -lit for lit in clause] for clause in clauses
    ]
    return num_vars, signed


@settings(max_examples=80, deadline=None)
@given(random_cnf())
def test_roundtrip_preserves_satisfiability(instance):
    num_vars, clauses = instance
    direct = DimacsProblem(num_vars, [list(c) for c in clauses]).solve()[0]
    text = to_dimacs(num_vars, clauses)
    reparsed = parse_dimacs(text).solve()[0]
    assert direct == reparsed
