"""Differential test: the optimized CDCL core vs a naive reference DPLL.

The flattened :class:`SatSolver` (literal-code watch arrays, inlined
propagation, clause minimisation, level-0 simplification) must agree with a
deliberately simple solver on randomly generated CNFs — both on the
sat/unsat verdict and on model validity.  A fixed seed keeps the instance
set reproducible.
"""

from __future__ import annotations

import random

from repro.smt.sat import SatSolver

SEED = 20260726
NUM_INSTANCES = 200
MAX_VARS = 8
MAX_CLAUSES = 30


def _reference_dpll(num_vars: int, clauses: list[list[int]]) -> dict[int, bool] | None:
    """A tiny DPLL with unit propagation; returns a model or None (unsat)."""

    def simplify(clauses: list[list[int]], lit: int) -> list[list[int]] | None:
        out: list[list[int]] = []
        for clause in clauses:
            if lit in clause:
                continue
            reduced = [l for l in clause if l != -lit]
            if not reduced:
                return None  # empty clause: conflict
            out.append(reduced)
        return out

    def search(clauses: list[list[int]], assignment: dict[int, bool]) -> dict[int, bool] | None:
        # Unit propagation.
        while True:
            unit = next((c[0] for c in clauses if len(c) == 1), None)
            if unit is None:
                break
            assignment = {**assignment, abs(unit): unit > 0}
            reduced = simplify(clauses, unit)
            if reduced is None:
                return None
            clauses = reduced
        if not clauses:
            return assignment
        branch = abs(clauses[0][0])
        for value in (True, False):
            lit = branch if value else -branch
            reduced = simplify(clauses, lit)
            if reduced is not None:
                model = search(reduced, {**assignment, branch: value})
                if model is not None:
                    return model
        return None

    return search(clauses, {})


def _random_instance(rng: random.Random) -> tuple[int, list[list[int]]]:
    num_vars = rng.randint(1, MAX_VARS)
    num_clauses = rng.randint(1, MAX_CLAUSES)
    clauses = []
    for __ in range(num_clauses):
        width = rng.randint(1, 3)
        clauses.append(
            [rng.randint(1, num_vars) * rng.choice((1, -1)) for __ in range(width)]
        )
    return num_vars, clauses


def _check_model(solver: SatSolver, clauses: list[list[int]]) -> None:
    for clause in clauses:
        assert any(solver.value(l) for l in clause), f"model violates {clause}"


def test_cdcl_agrees_with_reference_dpll_on_random_cnfs():
    rng = random.Random(SEED)
    num_sat = 0
    for __ in range(NUM_INSTANCES):
        num_vars, clauses = _random_instance(rng)
        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        for clause in clauses:
            solver.add_clause(list(clause))
        got = solver.solve()
        expected = _reference_dpll(num_vars, clauses)
        assert got is (expected is not None), (
            f"verdict mismatch on {num_vars} vars, clauses {clauses}"
        )
        if got:
            num_sat += 1
            _check_model(solver, clauses)
    # The generator should exercise both verdicts; guard against a skewed
    # instance distribution silently weakening the test.
    assert 0 < num_sat < NUM_INSTANCES


def test_cdcl_agrees_with_reference_dpll_under_assumptions():
    """Assumption-based solving must match adding the assumptions as units."""
    rng = random.Random(SEED + 1)
    for __ in range(60):
        num_vars, clauses = _random_instance(rng)
        assumptions = sorted(
            {rng.randint(1, num_vars) * rng.choice((1, -1)) for __ in range(rng.randint(1, 3))}
        )
        solver = SatSolver()
        for _ in range(num_vars):
            solver.new_var()
        for clause in clauses:
            solver.add_clause(list(clause))
        got = solver.solve(assumptions=assumptions)
        expected = _reference_dpll(num_vars, clauses + [[a] for a in assumptions])
        assert got is (expected is not None)
        if got:
            _check_model(solver, clauses + [[a] for a in assumptions])
        # The solver stays reusable: the base formula's verdict is
        # unchanged by the assumption-scoped solve (and any learnt clauses).
        base = solver.solve()
        assert base is (_reference_dpll(num_vars, clauses) is not None)
        if base:
            _check_model(solver, clauses)
