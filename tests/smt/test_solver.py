"""End-to-end tests of the SMT facade: bit-blasting + Tseitin + CDCL."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import smt
from repro.smt import terms as T


def test_bv_equality_model():
    s = smt.Solver()
    x = smt.bv_var("x", 8)
    s.add(smt.bv_eq(x, smt.bv_const(42, 8)))
    assert s.check() is smt.Result.SAT
    assert s.model().eval_bv(x) == 42


def test_masking_constraint():
    s = smt.Solver()
    x = smt.bv_var("x", 8)
    s.add(smt.bv_eq(smt.bv_and(x, smt.bv_const(0xF0, 8)), smt.bv_const(0x30, 8)))
    assert s.check() is smt.Result.SAT
    assert s.model().eval_bv(x) & 0xF0 == 0x30


def test_unsat_conflicting_equalities():
    s = smt.Solver()
    x = smt.bv_var("x", 8)
    s.add(smt.bv_eq(x, smt.bv_const(1, 8)))
    s.add(smt.bv_eq(x, smt.bv_const(2, 8)))
    assert s.check() is smt.Result.UNSAT


def test_model_unavailable_after_unsat():
    s = smt.Solver()
    s.add(smt.false())
    assert s.check() is smt.Result.UNSAT
    with pytest.raises(RuntimeError):
        s.model()


def test_non_bool_assertion_rejected():
    s = smt.Solver()
    with pytest.raises(TypeError):
        s.add(smt.bv_var("x", 4))


def test_ult_strictness():
    s = smt.Solver()
    x = smt.bv_var("x", 4)
    s.add(smt.bv_ult(x, smt.bv_const(1, 4)))
    assert s.check() is smt.Result.SAT
    assert s.model().eval_bv(x) == 0

    s2 = smt.Solver()
    s2.add(smt.bv_ult(smt.bv_var("y", 4), smt.bv_const(0, 4)))
    assert s2.check() is smt.Result.UNSAT


def test_ule_range():
    s = smt.Solver()
    x = smt.bv_var("x", 4)
    s.add(smt.bv_ule(smt.bv_const(5, 4), x))
    s.add(smt.bv_ule(x, smt.bv_const(6, 4)))
    s.add(smt.bv_ne(x, smt.bv_const(5, 4)))
    assert s.check() is smt.Result.SAT
    assert s.model().eval_bv(x) == 6


def test_addition_with_overflow():
    s = smt.Solver()
    x = smt.bv_var("x", 8)
    s.add(smt.bv_eq(smt.bv_add(x, smt.bv_const(10, 8)), smt.bv_const(5, 8)))
    assert s.check() is smt.Result.SAT
    assert (s.model().eval_bv(x) + 10) % 256 == 5


def test_bv_ite_selects_branch():
    s = smt.Solver()
    c = smt.bool_var("c")
    x = smt.ite(c, smt.bv_const(7, 8), smt.bv_const(9, 8))
    s.add(smt.bv_eq(x, smt.bv_const(9, 8)))
    assert s.check() is smt.Result.SAT
    assert s.model().eval_bool(c) is False


def test_boolean_structure_with_bv_atoms():
    s = smt.Solver()
    x = smt.bv_var("x", 8)
    y = smt.bv_var("y", 8)
    p = smt.bv_eq(x, smt.bv_const(1, 8))
    q = smt.bv_eq(y, smt.bv_const(2, 8))
    s.add(smt.or_(p, q))
    s.add(smt.not_(p))
    assert s.check() is smt.Result.SAT
    assert s.model().eval_bv(y) == 2


def test_prove_valid_implication():
    x = smt.bv_var("x", 8)
    goal = smt.bv_ule(smt.bv_and(x, smt.bv_const(0x0F, 8)), smt.bv_const(0x0F, 8))
    cex, __ = smt.prove(goal)
    assert cex is None


def test_prove_invalid_gives_counterexample():
    x = smt.bv_var("x", 8)
    goal = smt.bv_ult(x, smt.bv_const(128, 8))
    cex, __ = smt.prove(goal)
    assert cex is not None
    assert cex.model.eval_bv(x) >= 128


def test_prove_with_assumptions():
    x = smt.bv_var("x", 8)
    assumption = smt.bv_ult(x, smt.bv_const(10, 8))
    goal = smt.bv_ult(x, smt.bv_const(100, 8))
    cex, __ = smt.prove(goal, assumptions=[assumption])
    assert cex is None


def test_stats_populated():
    s = smt.Solver()
    x = smt.bv_var("x", 16)
    s.add(smt.bv_eq(x, smt.bv_const(12345, 16)))
    s.check()
    assert s.stats.num_vars >= 16
    assert s.stats.num_clauses > 0
    assert s.stats.total_time_s >= 0


# ---------------------------------------------------------------------------
# Property-based: random term evaluation agrees with the model.
# ---------------------------------------------------------------------------

_WIDTH = 4


@st.composite
def bv_terms(draw, depth=0):
    if depth >= 3:
        choice = draw(st.integers(0, 1))
    else:
        choice = draw(st.integers(0, 6))
    if choice == 0:
        return smt.bv_const(draw(st.integers(0, 2**_WIDTH - 1)), _WIDTH)
    if choice == 1:
        return smt.bv_var(draw(st.sampled_from(["a", "b", "c"])), _WIDTH)
    lhs = draw(bv_terms(depth=depth + 1))
    rhs = draw(bv_terms(depth=depth + 1))
    if choice == 2:
        return smt.bv_and(lhs, rhs)
    if choice == 3:
        return smt.bv_or(lhs, rhs)
    if choice == 4:
        return smt.bv_xor(lhs, rhs)
    if choice == 5:
        return smt.bv_add(lhs, rhs)
    return smt.bv_not(lhs)


@st.composite
def bool_terms(draw, depth=0):
    if depth >= 3:
        choice = draw(st.integers(0, 2))
    else:
        choice = draw(st.integers(0, 6))
    if choice == 0:
        return smt.bool_var(draw(st.sampled_from(["p", "q", "r"])))
    if choice == 1:
        lhs = draw(bv_terms(depth=depth + 1))
        rhs = draw(bv_terms(depth=depth + 1))
        return smt.bv_eq(lhs, rhs)
    if choice == 2:
        lhs = draw(bv_terms(depth=depth + 1))
        rhs = draw(bv_terms(depth=depth + 1))
        return smt.bv_ult(lhs, rhs)
    if choice == 3:
        return smt.not_(draw(bool_terms(depth=depth + 1)))
    if choice == 4:
        return smt.and_(
            draw(bool_terms(depth=depth + 1)), draw(bool_terms(depth=depth + 1))
        )
    if choice == 5:
        return smt.or_(
            draw(bool_terms(depth=depth + 1)), draw(bool_terms(depth=depth + 1))
        )
    return smt.ite(
        draw(bool_terms(depth=depth + 1)),
        draw(bool_terms(depth=depth + 1)),
        draw(bool_terms(depth=depth + 1)),
    )


@settings(max_examples=120, deadline=None)
@given(bool_terms())
def test_model_satisfies_asserted_term(term):
    s = smt.Solver()
    s.add(term)
    result = s.check()
    if result is smt.Result.SAT:
        assert s.model().eval_bool(term) is True
    else:
        # UNSAT must agree with brute force over the tiny variable space.
        assert not _brute_force_satisfiable(term)


def _brute_force_satisfiable(term) -> bool:
    import itertools

    from repro.smt.solver import Model

    bools = ["p", "q", "r"]
    bvs = ["a", "b", "c"]
    for bool_bits in itertools.product([False, True], repeat=len(bools)):
        for bv_vals in itertools.product(range(2**_WIDTH), repeat=len(bvs)):
            model = Model(
                {smt.bool_var(n): v for n, v in zip(bools, bool_bits)},
                {smt.bv_var(n, _WIDTH): v for n, v in zip(bvs, bv_vals)},
            )
            if model.eval_bool(term):
                return True
    return False
