"""Tests for the term AST and smart constructors."""

from __future__ import annotations

import pytest

from repro.smt import terms as T


def test_interning_gives_identity():
    assert T.bool_var("x") is T.bool_var("x")
    assert T.bv_var("p", 8) is T.bv_var("p", 8)
    assert T.bv_const(3, 8) is T.bv_const(3, 8)
    assert T.and_(T.bool_var("x"), T.bool_var("y")) is T.and_(
        T.bool_var("x"), T.bool_var("y")
    )


def test_bv_const_wraps_modulo_width():
    assert T.bv_const(256, 8).value == 0
    assert T.bv_const(-1, 8).value == 255


def test_not_folding():
    x = T.bool_var("x")
    assert T.not_(T.not_(x)) is x
    assert T.not_(T.true()) is T.false()
    assert T.not_(T.false()) is T.true()


def test_and_flattening_and_units():
    x, y, z = T.bool_var("x"), T.bool_var("y"), T.bool_var("z")
    assert T.and_() is T.true()
    assert T.and_(x) is x
    assert T.and_(x, T.true()) is x
    assert T.and_(x, T.false()) is T.false()
    inner = T.and_(x, y)
    flat = T.and_(inner, z)
    assert isinstance(flat, T.And)
    assert flat.args == (x, y, z)


def test_and_contradiction_detected():
    x = T.bool_var("x")
    assert T.and_(x, T.not_(x)) is T.false()


def test_or_duals():
    x, y = T.bool_var("x"), T.bool_var("y")
    assert T.or_() is T.false()
    assert T.or_(x, T.true()) is T.true()
    assert T.or_(x, T.false()) is x
    assert T.or_(x, T.not_(x)) is T.true()
    assert T.or_(T.or_(x, y), y) is T.or_(x, y)


def test_implies_and_iff_folding():
    x = T.bool_var("x")
    assert T.implies(T.true(), x) is x
    assert T.implies(T.false(), x) is T.true()
    assert T.iff(x, x) is T.true()
    assert T.iff(x, T.true()) is x
    assert T.iff(x, T.false()) is T.not_(x)


def test_ite_folding():
    x, y, c = T.bool_var("x"), T.bool_var("y"), T.bool_var("c")
    assert T.ite(T.true(), x, y) is x
    assert T.ite(T.false(), x, y) is y
    assert T.ite(c, x, x) is x
    assert T.ite(c, T.true(), T.false()) is c
    assert T.ite(c, T.false(), T.true()) is T.not_(c)


def test_bv_ite_requires_matching_width():
    c = T.bool_var("c")
    with pytest.raises(TypeError):
        T.ite(c, T.bv_var("a", 8), T.bv_var("b", 16))


def test_bv_relations_fold_constants():
    three = T.bv_const(3, 8)
    five = T.bv_const(5, 8)
    assert T.bv_eq(three, three) is T.true()
    assert T.bv_eq(three, five) is T.false()
    assert T.bv_ult(three, five) is T.true()
    assert T.bv_ult(five, three) is T.false()
    assert T.bv_ule(three, three) is T.true()
    assert T.bv_uge(five, three) is T.true()


def test_bv_bitwise_folding():
    a = T.bv_var("a", 8)
    zeros = T.bv_const(0, 8)
    ones = T.bv_const(0xFF, 8)
    assert T.bv_and(a, ones) is a
    assert T.bv_and(a, zeros) is zeros
    assert T.bv_or(a, zeros) is a
    assert T.bv_or(a, ones) is ones
    assert T.bv_add(a, zeros) is a
    assert T.bv_not(T.bv_not(a)) is a
    assert T.bv_and(T.bv_const(0b1100, 8), T.bv_const(0b1010, 8)).value == 0b1000


def test_width_mismatch_raises():
    with pytest.raises(TypeError):
        T.bv_eq(T.bv_var("a", 8), T.bv_var("b", 16))
    with pytest.raises(TypeError):
        T.bv_and(T.bv_var("a", 8), T.bv_var("b", 4))


def test_width_property_on_bool_raises():
    with pytest.raises(TypeError):
        __ = T.bool_var("x").width


def test_or_of_term_and_its_negation_is_true():
    shared = T.and_(T.bool_var("x"), T.bool_var("y"))
    assert T.or_(shared, T.not_(shared)) is T.true()


def test_term_size_counts_shared_nodes_once():
    c = T.bool_var("c")
    shared = T.and_(T.bool_var("x"), T.bool_var("y"))
    term = T.Ite(c, shared, T.not_(shared))
    # ite-node, c, shared and-node, not-node, x, y
    assert T.term_size(term) == 6


def test_bitvec_sort_cached_and_immutable():
    assert T.BitVecSort(8) is T.BitVecSort(8)
    with pytest.raises(ValueError):
        T.BitVecSort(0)
    with pytest.raises(AttributeError):
        T.BitVecSort(8).width = 9
