"""Semantics of :class:`repro.smt.CheckSession`: reuse must be invisible.

A session discharges a sequence of independent queries against one shared
clause database.  Every query's verdict and model must match what a fresh
one-shot :class:`Solver` computes — in any interleaving of SAT and UNSAT
answers — and the per-check stats must stay marginal (bounded by one
check's encoding, not the accumulated session).
"""

from __future__ import annotations

import pytest

from repro import smt
from repro.smt.solver import CheckSession


def _fresh_result(assertions):
    solver = smt.Solver()
    for a in assertions:
        solver.add(a)
    return solver.check()


def test_session_matches_fresh_solver_on_interleaved_queries():
    x = smt.bv_var("x", 8)
    p = smt.bool_var("p")
    queries = [
        [smt.bv_eq(x, smt.bv_const(3, 8))],
        [smt.bv_eq(x, smt.bv_const(3, 8)), smt.bv_eq(x, smt.bv_const(4, 8))],
        [smt.or_(p, smt.bv_ult(x, smt.bv_const(10, 8)))],
        [smt.and_(p, smt.not_(p))],
        [smt.bv_ule(smt.bv_const(250, 8), x), smt.not_(p)],
    ]
    session = CheckSession()
    for assertions in queries:
        assert session.check(assertions) is _fresh_result(assertions)


def test_session_model_satisfies_current_query_only():
    x = smt.bv_var("x", 8)
    session = CheckSession()
    assert session.check([smt.bv_eq(x, smt.bv_const(7, 8))]) is smt.Result.SAT
    assert session.model().eval_bv(x) == 7
    # A later query over the same variable must re-pin it.
    assert session.check([smt.bv_eq(x, smt.bv_const(200, 8))]) is smt.Result.SAT
    assert session.model().eval_bv(x) == 200


def test_session_model_unavailable_after_unsat():
    p = smt.bool_var("p")
    session = CheckSession()
    assert session.check([p, smt.not_(p)]) is smt.Result.UNSAT
    with pytest.raises(RuntimeError):
        session.model()


def test_session_trivially_false_assertion_is_unsat_not_poisonous():
    p = smt.bool_var("p")
    session = CheckSession()
    assert session.check([smt.false()]) is smt.Result.UNSAT
    # The shared clause database must survive a degenerate query.
    assert session.check([p]) is smt.Result.SAT
    assert session.model().eval_bool(p) is True


def test_session_stats_are_marginal_not_cumulative():
    session = CheckSession()
    xs = [smt.bv_var(f"x{i}", 8) for i in range(6)]
    sizes = []
    for x in xs:
        assert session.check([smt.bv_eq(x, smt.bv_const(1, 8))]) is smt.Result.SAT
        sizes.append(session.stats.num_vars)
    # Each query encodes one fresh 8-bit variable (plus small overhead);
    # cumulative stats would grow linearly instead.
    assert max(sizes) <= 2 * sizes[0] + 8
    # A fully shared repeat query costs (almost) nothing to encode.
    assert session.check([smt.bv_eq(xs[0], smt.bv_const(1, 8))]) is smt.Result.SAT
    assert session.stats.num_vars == 0
    assert session.stats.num_clauses == 0


def test_session_conflict_budget_returns_unknown():
    # Pigeonhole 6-into-5 is hard enough to exhaust a one-conflict budget.
    holes, pigeons = 5, 6
    ps = [
        [smt.bool_var(f"ph.{i}.{j}") for j in range(holes)] for i in range(pigeons)
    ]
    assertions = [smt.or_(ps[i]) for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                assertions.append(smt.or_(smt.not_(ps[i1][j]), smt.not_(ps[i2][j])))
    session = CheckSession()
    assert session.check(assertions, conflict_budget=1) is smt.Result.UNKNOWN
    # The session keeps working after a budgeted query, with learnt clauses
    # (consequences of the definitions) carried over soundly.
    assert session.check(assertions) is smt.Result.UNSAT
    p = smt.bool_var("p")
    assert session.check([p]) is smt.Result.SAT
