"""Directed and exhaustive tests for the bit-blaster."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import smt
from repro.smt.bitblast import Bitblaster
from repro.smt.solver import Model
from repro.smt.terms import BoolVar


def _eval_with(term, assignments: dict[str, int], width: int):
    """Evaluate a BV term by fixing variables through the solver."""
    solver = smt.Solver()
    for name, value in assignments.items():
        solver.add(smt.bv_eq(smt.bv_var(name, width), smt.bv_const(value, width)))
    out = smt.bv_var("__out", width)
    solver.add(smt.bv_eq(out, term))
    assert solver.check() is smt.Result.SAT
    return solver.model().eval_bv(out)


WIDTH = 3


@pytest.mark.parametrize("a", range(8))
@pytest.mark.parametrize("b", range(8))
def test_adder_exhaustive_width3(a, b):
    x, y = smt.bv_var("x", WIDTH), smt.bv_var("y", WIDTH)
    got = _eval_with(smt.bv_add(x, y), {"x": a, "y": b}, WIDTH)
    assert got == (a + b) % 8


@pytest.mark.parametrize("a", range(8))
@pytest.mark.parametrize("b", range(8))
def test_ult_exhaustive_width3(a, b):
    x, y = smt.bv_var("x", WIDTH), smt.bv_var("y", WIDTH)
    solver = smt.Solver()
    solver.add(smt.bv_eq(x, smt.bv_const(a, WIDTH)))
    solver.add(smt.bv_eq(y, smt.bv_const(b, WIDTH)))
    solver.add(smt.bv_ult(x, y))
    expected = smt.Result.SAT if a < b else smt.Result.UNSAT
    assert solver.check() is expected


@pytest.mark.parametrize("a", range(8))
@pytest.mark.parametrize("b", range(8))
def test_ule_exhaustive_width3(a, b):
    x, y = smt.bv_var("x", WIDTH), smt.bv_var("y", WIDTH)
    solver = smt.Solver()
    solver.add(smt.bv_eq(x, smt.bv_const(a, WIDTH)))
    solver.add(smt.bv_eq(y, smt.bv_const(b, WIDTH)))
    solver.add(smt.bv_ule(x, y))
    expected = smt.Result.SAT if a <= b else smt.Result.UNSAT
    assert solver.check() is expected


def test_width_one_vectors():
    x = smt.bv_var("bit", 1)
    solver = smt.Solver()
    solver.add(smt.bv_ult(x, smt.bv_const(1, 1)))
    assert solver.check() is smt.Result.SAT
    assert solver.model().eval_bv(x) == 0


def test_bitblaster_names_bits_deterministically():
    blaster = Bitblaster()
    bits = blaster.blast_bv(smt.bv_var("v", 4))
    assert [b.name for b in bits] == ["v!0", "v!1", "v!2", "v!3"]
    again = blaster.blast_bv(smt.bv_var("v", 4))
    assert bits == again  # memoised
    assert smt.bv_var("v", 4) in blaster.bv_bits


def test_bitblaster_rejects_unknown_nodes():
    blaster = Bitblaster()
    with pytest.raises(TypeError):
        blaster.blast_bool(smt.bv_var("v", 4))
    with pytest.raises(TypeError):
        blaster.blast_bv(smt.bool_var("p"))


def test_constant_bv_blasts_to_constants():
    blaster = Bitblaster()
    bits = blaster.blast_bv(smt.bv_const(0b101, 3))
    values = [b is smt.true() for b in bits]
    assert values == [True, False, True]


@settings(max_examples=100, deadline=None)
@given(
    st.integers(0, 255),
    st.integers(0, 255),
    st.sampled_from(["and", "or", "xor", "add", "not"]),
)
def test_bitwise_ops_width8(a, b, op):
    x, y = smt.bv_var("x", 8), smt.bv_var("y", 8)
    if op == "and":
        term, expected = smt.bv_and(x, y), a & b
    elif op == "or":
        term, expected = smt.bv_or(x, y), a | b
    elif op == "xor":
        term, expected = smt.bv_xor(x, y), a ^ b
    elif op == "add":
        term, expected = smt.bv_add(x, y), (a + b) & 0xFF
    else:
        term, expected = smt.bv_not(x), ~a & 0xFF
    got = _eval_with(term, {"x": a, "y": b}, 8)
    assert got == expected


def test_nested_ite_chain():
    # The shape symbolic route-map execution produces: nested BvIte.
    c1, c2 = smt.bool_var("c1"), smt.bool_var("c2")
    term = smt.ite(c1, smt.bv_const(1, 8), smt.ite(c2, smt.bv_const(2, 8), smt.bv_const(3, 8)))
    for v1, v2, expected in [
        (True, True, 1),
        (True, False, 1),
        (False, True, 2),
        (False, False, 3),
    ]:
        solver = smt.Solver()
        solver.add(c1 if v1 else smt.not_(c1))
        solver.add(c2 if v2 else smt.not_(c2))
        solver.add(smt.bv_eq(term, smt.bv_const(expected, 8)))
        assert solver.check() is smt.Result.SAT, (v1, v2, expected)
        # And the wrong value is unsatisfiable.
        solver2 = smt.Solver()
        solver2.add(c1 if v1 else smt.not_(c1))
        solver2.add(c2 if v2 else smt.not_(c2))
        solver2.add(smt.bv_eq(term, smt.bv_const(expected % 3 + 1, 8)))
        assert solver2.check() is smt.Result.UNSAT
