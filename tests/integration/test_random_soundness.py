"""Soundness cross-validation on random topologies.

Generalises the Figure 1 soundness test: for several random internal
graphs, verify the no-transit property once, then simulate randomized
announcements and failures and assert no trace violates it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.bgp.simulator import EventKind, Simulator
from repro.bgp.topology import Edge
from repro.core.properties import InvariantMap, SafetyProperty
from repro.core.safety import verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not
from repro.workloads.fullmesh import TRANSIT_COMMUNITY
from repro.workloads.randomnet import build_random_network


def _verify_no_transit(config) -> None:
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    invariants = InvariantMap(
        config.topology,
        default=Implies(GhostIs("FromE1"), HasCommunity(TRANSIT_COMMUNITY)),
    )
    invariants.set_edge("R2", "E2", Not(GhostIs("FromE1")))
    report = verify_safety(config, prop, invariants, ghosts=(ghost,))
    assert report.passed


_CONFIGS = {
    (model, seed): build_random_network(8, model=model, seed=seed)
    for model in ("gnp", "ba", "ring")
    for seed in (0, 1)
}
for _cfg in _CONFIGS.values():
    _verify_no_transit(_cfg)


@st.composite
def scenario(draw):
    key = draw(st.sampled_from(sorted(_CONFIGS)))
    config = _CONFIGS[key]
    pools = {
        "E1": Prefix.parse("50.0.0.0/8"),
        "E3": Prefix.parse("60.0.0.0/8"),
        "E4": Prefix.parse("70.0.0.0/8"),
    }
    announcements = {}
    for ext, pool in pools.items():
        subs = list(pool.subprefixes(10))[:4]
        chosen = draw(st.lists(st.sampled_from(subs), max_size=2))
        announcements[ext] = [
            Route(prefix=p, med=draw(st.integers(0, 20))) for p in chosen
        ]
    edges = sorted(config.topology.edges)
    failures = set(draw(st.sets(st.sampled_from(edges), max_size=3)))
    return config, announcements, failures


@settings(max_examples=50, deadline=None)
@given(scenario())
def test_no_transit_holds_on_random_networks(case):
    config, announcements, failures = case
    result = Simulator(config, failed_edges=failures).run(announcements)
    e1_prefixes = {r.prefix for r in announcements["E1"]}
    for event in result.events:
        if event.location == Edge("R2", "E2") and event.kind is EventKind.FRWD:
            assert event.route.prefix not in e1_prefixes


@pytest.mark.parametrize("model", ["gnp", "ba", "ring"])
def test_e1_route_blocked_even_on_shortest_path(model):
    config = _CONFIGS[(model, 0)]
    route = Route(prefix=Prefix.parse("50.1.0.0/16"))
    result = Simulator(config).run({"E1": [route]})
    assert result.routes_forwarded_on(Edge("R2", "E2")) == []
    # The route does propagate inside the network (tagged).
    selected = result.selected("R1", route.prefix)
    assert selected is not None
    assert TRANSIT_COMMUNITY in selected.communities
