"""The complete §2 walkthrough: Tables 2 and 3 on the Figure 1 network.

These tests mirror the paper's tables row by row: the user-provided rows
(property, invariants, path constraints) are built exactly as printed, and
the generated rows are exercised through the engine.
"""

from __future__ import annotations

from repro.bgp.topology import Edge
from repro.core.checks import CheckKind, generate_safety_checks
from repro.core.engine import Lightyear
from repro.core.liveness import generate_propagation_checks, interference_properties
from repro.lang.ghost import GhostAttribute
from repro.workloads.figure1 import build_figure1

from tests.core.conftest import (
    customer_liveness_property,
    no_transit_invariants,
    no_transit_property,
)


def _engine():
    config = build_figure1()
    ghost = GhostAttribute.source_tracker(
        "FromISP1", config.topology, [Edge("ISP1", "R1")]
    )
    return Lightyear(config, ghosts=(ghost,)), config


def test_table2_complete_walkthrough():
    engine, config = _engine()
    report = engine.verify_safety(no_transit_property(), no_transit_invariants(config))
    assert report.passed

    # Table 2's generated-check rows: the ISP1->R1 import establishes the
    # key invariant; the R2->ISP2 export discharges the property edge; all
    # other filters preserve the key invariant.
    checks = {
        (c.kind, c.edge): c
        for c in generate_safety_checks(
            config,
            no_transit_invariants(config),
            no_transit_property().location,
            no_transit_property().predicate,
        )
        if c.edge is not None
    }
    assert (CheckKind.IMPORT, Edge("ISP1", "R1")) in checks
    assert (CheckKind.EXPORT, Edge("R2", "ISP2")) in checks
    # "Other edges" rows: every remaining internal location is covered.
    internal_edges = set(config.topology.internal_edges())
    covered = {e for (kind, e) in checks if kind is CheckKind.IMPORT}
    assert internal_edges <= covered


def test_table3_complete_walkthrough():
    engine, config = _engine()
    prop = customer_liveness_property()
    report = engine.verify_liveness(prop)
    assert report.passed

    # Table 3's propagation rows.
    checks = generate_propagation_checks(config, prop)
    edges = [c.edge for c in checks]
    assert edges == [
        Edge("Customer", "R3"),
        Edge("R3", "R2"),
        Edge("R3", "R2"),
        Edge("R2", "ISP2"),
    ]
    # Table 3's no-interference rows: R3 and R2.
    assert set(interference_properties(prop)) == {"R3", "R2"}


def test_both_bugs_from_section2_are_found():
    # Bug 1: R1 forgets to tag some ISP1 routes -> safety fails at R1.
    config = build_figure1(buggy_r1_tagging=True)
    ghost = GhostAttribute.source_tracker(
        "FromISP1", config.topology, [Edge("ISP1", "R1")]
    )
    engine = Lightyear(config, ghosts=(ghost,))
    report = engine.verify_safety(no_transit_property(), no_transit_invariants(config))
    assert not report.passed
    assert {f.blamed_router for f in report.failures} == {"R1"}

    # Bug 2: R3 forgets to strip communities -> liveness fails at R3.
    config2 = build_figure1(buggy_r3_strip=True)
    engine2 = Lightyear(config2)
    report2 = engine2.verify_liveness(customer_liveness_property())
    assert not report2.passed
    blamed = {f.blamed_router for f in report2.failures}
    assert "R3" in blamed
