"""Cross-validation of the paper's soundness theorems against the simulator.

The §4.3 theorem: if all local checks pass, every valid trace satisfies the
property — for *all* external announcements and *arbitrary* failures.  The
simulator produces valid traces, so we verify a property once, then throw
randomized announcements and link failures at the network and assert that
no simulated trace ever violates it.

The §5.3 theorem: if the liveness checks pass, the assumed route is
announced, and no path link fails, the property route arrives.  We assert
exactly that, including the "failures elsewhere are tolerated" clause.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.bgp.route import Community, Route
from repro.bgp.simulator import EventKind, Simulator
from repro.bgp.topology import Edge
from repro.core.safety import verify_safety
from repro.core.liveness import verify_liveness
from repro.workloads.figure1 import (
    CUSTOMER_PREFIX,
    TRANSIT_COMMUNITY,
    build_figure1,
)

from tests.core.conftest import (
    customer_liveness_property,
    customer_prefixes,
    no_transit_invariants,
    no_transit_property,
)
from tests.core.conftest import no_transit_property as _prop


# The verified network (checked once at import).
_CONFIG = build_figure1()
_GHOST = None


def _verified_once():
    global _GHOST
    if _GHOST is None:
        from repro.lang.ghost import GhostAttribute

        _GHOST = GhostAttribute.source_tracker(
            "FromISP1", _CONFIG.topology, [Edge("ISP1", "R1")]
        )
        report = verify_safety(
            _CONFIG,
            no_transit_property(),
            no_transit_invariants(_CONFIG),
            ghosts=(_GHOST,),
        )
        assert report.passed
    return _CONFIG


@st.composite
def announcements(draw):
    """Arbitrary external announcements, with ISP1's prefixes marked.

    The ghost FromISP1 is semantic; in simulation we realise it by giving
    ISP1 a dedicated prefix pool so "route from ISP1" is observable.
    """
    isp1_pool = Prefix.parse("50.0.0.0/8")
    other_pool = Prefix.parse("60.0.0.0/8")
    cust_pool = CUSTOMER_PREFIX

    def routes(pool, max_n=2):
        subs = list(pool.subprefixes(12))[:8]
        chosen = draw(st.lists(st.sampled_from(subs), max_size=max_n))
        return [
            Route(
                prefix=p,
                med=draw(st.integers(0, 50)),
                local_pref=draw(st.integers(50, 200)),
                communities=frozenset(
                    draw(st.sets(st.sampled_from([TRANSIT_COMMUNITY, Community(9, 9)])))
                ),
            )
            for p in chosen
        ]

    return {
        "ISP1": routes(isp1_pool),
        "ISP2": routes(other_pool),
        "Customer": routes(cust_pool),
    }


@st.composite
def failure_sets(draw):
    all_edges = sorted(_CONFIG.topology.edges)
    failed = draw(st.sets(st.sampled_from(all_edges), max_size=4))
    return set(failed)


@settings(max_examples=60, deadline=None)
@given(announcements(), failure_sets())
def test_verified_safety_holds_on_all_simulated_traces(annc, failures):
    """No ISP1-originated prefix ever crosses R2->ISP2, under any
    announcements and any link failures."""
    config = _verified_once()
    sim = Simulator(config, failed_edges=failures)
    result = sim.run(annc)
    isp1_prefixes = {r.prefix for r in annc["ISP1"]}
    for event in result.events:
        if event.location == Edge("R2", "ISP2") and event.kind is EventKind.FRWD:
            assert event.route.prefix not in isp1_prefixes, (
                f"ISP1 route {event.route} leaked to ISP2 "
                f"(failures={failures})"
            )


@settings(max_examples=60, deadline=None)
@given(announcements(), failure_sets())
def test_verified_invariant_holds_inside_network(annc, failures):
    """The key invariant (ISP1 routes are tagged 100:1) holds at every
    internal location in every simulated trace."""
    config = _verified_once()
    result = Simulator(config, failed_edges=failures).run(annc)
    isp1_prefixes = {r.prefix for r in annc["ISP1"]}
    # ISP2/Customer may announce the same prefixes; only blame ISP1 for
    # prefixes no one else announced.
    exclusive = isp1_prefixes - {
        r.prefix for ext in ("ISP2", "Customer") for r in annc[ext]
    }
    for event in result.events:
        if event.kind is EventKind.SLCT and event.route.prefix in exclusive:
            assert TRANSIT_COMMUNITY in event.route.communities


_LIVENESS_VERIFIED = False


def _liveness_verified_once():
    global _LIVENESS_VERIFIED
    if not _LIVENESS_VERIFIED:
        report = verify_liveness(_CONFIG, customer_liveness_property())
        assert report.passed
        _LIVENESS_VERIFIED = True
    return _CONFIG


def _good_customer_route() -> Route:
    return Route(prefix=Prefix.parse("20.1.0.0/16"))


def test_liveness_holds_with_no_failures():
    config = _liveness_verified_once()
    result = Simulator(config).run({"Customer": [_good_customer_route()]})
    out = result.routes_forwarded_on(Edge("R2", "ISP2"))
    assert any(customer_prefixes().holds(r) for r in out)


def test_liveness_holds_despite_off_path_failures():
    # The §5.3 theorem tolerates failures off the witness path.  Fail every
    # edge not on Customer->R3->R2->ISP2.
    config = _liveness_verified_once()
    path_edges = {
        Edge("Customer", "R3"),
        Edge("R3", "R2"),
        Edge("R2", "ISP2"),
    }
    failures = set(config.topology.edges) - path_edges
    result = Simulator(config, failed_edges=failures).run(
        {"Customer": [_good_customer_route()]}
    )
    out = result.routes_forwarded_on(Edge("R2", "ISP2"))
    assert any(customer_prefixes().holds(r) for r in out)


def test_liveness_holds_under_interference():
    # Competing announcements for the same prefix from ISPs must not block
    # the property (they are filtered; the customer route still flows).
    config = _liveness_verified_once()
    result = Simulator(config).run(
        {
            "Customer": [_good_customer_route()],
            "ISP2": [Route(prefix=Prefix.parse("60.0.0.0/8"))],
            "ISP1": [Route(prefix=Prefix.parse("50.0.0.0/8"), local_pref=200)],
        }
    )
    out = result.routes_forwarded_on(Edge("R2", "ISP2"))
    assert any(customer_prefixes().holds(r) for r in out)


def test_liveness_needs_path_links():
    # Sanity (the theorem's precondition, not its conclusion): failing a
    # path link does break delivery.
    config = _liveness_verified_once()
    result = Simulator(config, failed_edges={Edge("R3", "R2"), Edge("R3", "R1")}).run(
        {"Customer": [_good_customer_route()]}
    )
    assert result.routes_forwarded_on(Edge("R2", "ISP2")) == []


def test_buggy_network_violates_property_in_simulation():
    # The converse direction: the configuration Lightyear rejects really
    # does misbehave for some announcement.
    config = build_figure1(buggy_r1_tagging=True)
    leak = Route(prefix=Prefix.parse("50.0.0.0/8"), med=0)  # MED<=10: untagged
    result = Simulator(config).run({"ISP1": [leak]})
    out = result.routes_forwarded_on(Edge("R2", "ISP2"))
    assert any(r.prefix == leak.prefix for r in out)
