"""Agreement between the modular and monolithic verifiers.

Lightyear is sound but (deliberately) incomplete: it proves exactly what
the supplied invariants support.  Minesweeper explores the full joint state
space.  The checkable relationship is therefore one-directional:

    if Lightyear verifies a property (under *some* invariants),
    then Minesweeper must verify the same property.

This test fuzzes small networks with randomly composed policies, lets the
§8 inference search find invariants, and asserts the implication whenever
it succeeds — a differential test of both verifiers at once.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.minesweeper import MinesweeperVerifier
from repro.bgp.config import NeighborConfig, NetworkConfig, RouterConfig
from repro.bgp.policy import (
    AddCommunity,
    DeleteCommunity,
    Disposition,
    MatchCommunity,
    RouteMap,
    RouteMapClause,
)
from repro.bgp.route import Community
from repro.bgp.topology import Edge, Topology
from repro.core.inference import infer_safety_invariants
from repro.core.properties import SafetyProperty
from repro.core.safety import verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, Not


C = Community(100, 1)

# A pool of simple policies the fuzzer composes.
TAG = RouteMap("TAG", (RouteMapClause(10, actions=(AddCommunity(C),)),))
PASS = None  # no route map: identity
STRIP = RouteMap("STRIP", (RouteMapClause(10, actions=(DeleteCommunity(C),)),))
BLOCK_TAGGED = RouteMap(
    "BLOCK",
    (
        RouteMapClause(10, Disposition.DENY, matches=(MatchCommunity(C),)),
        RouteMapClause(20),
    ),
)
DENY_ALL = RouteMap.deny_all()

POLICIES = [TAG, PASS, STRIP, BLOCK_TAGGED, DENY_ALL]


def _build_network(e1_import, internal_maps, egress_export) -> NetworkConfig:
    """A 3-router line: E1 - R1 - R2 - R3 - E3."""
    topo = Topology()
    for r in ("R1", "R2", "R3"):
        topo.add_router(r)
    topo.add_external("E1")
    topo.add_external("E3")
    topo.add_peering("R1", "E1")
    topo.add_peering("R1", "R2")
    topo.add_peering("R2", "R3")
    topo.add_peering("R3", "E3")

    config = NetworkConfig(topo)
    config.set_external_asn("E1", 100)
    config.set_external_asn("E3", 300)

    r1 = RouterConfig("R1", 65000)
    r1.add_neighbor(NeighborConfig("E1", 100, import_map=e1_import))
    r1.add_neighbor(NeighborConfig("R2", 65000, export_map=internal_maps[0]))
    r2 = RouterConfig("R2", 65000)
    r2.add_neighbor(NeighborConfig("R1", 65000, import_map=internal_maps[1]))
    r2.add_neighbor(NeighborConfig("R3", 65000, export_map=internal_maps[2]))
    r3 = RouterConfig("R3", 65000)
    r3.add_neighbor(NeighborConfig("R2", 65000, import_map=internal_maps[3]))
    r3.add_neighbor(NeighborConfig("E3", 300, export_map=egress_export))
    for rc in (r1, r2, r3):
        config.add_router_config(rc)
    return config


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from([TAG, DENY_ALL]),
    st.tuples(*[st.sampled_from(POLICIES)] * 4),
    st.sampled_from(POLICIES),
)
def test_lightyear_pass_implies_minesweeper_verifies(
    e1_import, internal_maps, egress_export
):
    config = _build_network(e1_import, list(internal_maps), egress_export)
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    prop = SafetyProperty(
        location=Edge("R3", "E3"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    inferred = infer_safety_invariants(config, prop, ghost, max_candidates=4)
    if not inferred.found:
        return  # Lightyear (with this candidate pool) cannot prove it: no claim.
    ms = MinesweeperVerifier(config, ghosts=(ghost,)).verify(
        prop, conflict_budget=20000
    )
    assert not ms.timed_out
    assert ms.verified, (
        "Lightyear verified but Minesweeper found a counterexample: "
        f"{ms.counterexample} — soundness violation in one of the verifiers"
    )


def test_known_safe_network_agrees():
    config = _build_network(TAG, [PASS, PASS, PASS, PASS], BLOCK_TAGGED)
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    prop = SafetyProperty(
        location=Edge("R3", "E3"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    inferred = infer_safety_invariants(config, prop, ghost)
    assert inferred.found
    ms = MinesweeperVerifier(config, ghosts=(ghost,)).verify(prop)
    assert ms.verified


def test_known_broken_network_agrees():
    # An internal STRIP breaks the scheme: Lightyear cannot prove it, and
    # Minesweeper exhibits a concrete leak.
    config = _build_network(TAG, [PASS, STRIP, PASS, PASS], BLOCK_TAGGED)
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    prop = SafetyProperty(
        location=Edge("R3", "E3"), predicate=Not(GhostIs("FromE1")), name="no-transit"
    )
    inferred = infer_safety_invariants(config, prop, ghost)
    assert not inferred.found
    ms = MinesweeperVerifier(config, ghosts=(ghost,)).verify(prop)
    assert not ms.verified
    assert ms.counterexample is not None
    assert ms.counterexample.ghost_value("FromE1") is True
