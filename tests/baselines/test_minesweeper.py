"""Tests for the Minesweeper-style monolithic baseline."""

from __future__ import annotations

import pytest

from repro import smt
from repro.baselines.minesweeper import (
    MinesweeperVerifier,
    symbolic_prefer_or_eq,
)
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.bgp.topology import Edge
from repro.core.properties import SafetyProperty
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Not
from repro.lang.symroute import SymbolicRoute
from repro.lang.universe import AttributeUniverse
from repro.smt.solver import Model
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1
from repro.workloads.fullmesh import build_full_mesh


def _no_transit_setup(config):
    ghost = GhostAttribute.source_tracker(
        "FromISP1", config.topology, [Edge("ISP1", "R1")]
    )
    prop = SafetyProperty(
        location=Edge("R2", "ISP2"),
        predicate=Not(GhostIs("FromISP1")),
        name="no-transit",
    )
    return ghost, prop


def test_preference_relation_is_total_on_concretes():
    universe = AttributeUniverse((), (), ())
    model = Model({}, {})
    cases = [
        (Route(prefix=Prefix.parse("1.0.0.0/8"), local_pref=200),
         Route(prefix=Prefix.parse("1.0.0.0/8"), local_pref=100), True),
        (Route(prefix=Prefix.parse("1.0.0.0/8"), as_path=(1,)),
         Route(prefix=Prefix.parse("1.0.0.0/8"), as_path=(1, 2)), True),
        (Route(prefix=Prefix.parse("1.0.0.0/8"), med=5),
         Route(prefix=Prefix.parse("1.0.0.0/8"), med=2), False),
    ]
    for a, b, expect in cases:
        sa = SymbolicRoute.concrete(a, universe)
        sb = SymbolicRoute.concrete(b, universe)
        assert model.eval_bool(symbolic_prefer_or_eq(sa, sb)) is expect


def test_figure1_no_transit_verified_monolithically():
    config = build_figure1()
    ghost, prop = _no_transit_setup(config)
    verifier = MinesweeperVerifier(config, ghosts=(ghost,))
    result = verifier.verify(prop)
    assert result.verified
    assert result.counterexample is None
    assert not result.timed_out


def test_figure1_buggy_tagging_found_monolithically():
    config = build_figure1(buggy_r1_tagging=True)
    ghost, prop = _no_transit_setup(config)
    verifier = MinesweeperVerifier(config, ghosts=(ghost,))
    result = verifier.verify(prop)
    assert not result.verified
    assert result.counterexample is not None
    # The violating route at R2->ISP2 is a FromISP1 route; per the bug it
    # slipped past tagging, so it cannot carry the transit community.
    assert result.counterexample.ghost_value("FromISP1") is True
    assert TRANSIT_COMMUNITY not in result.counterexample.communities


def test_agreement_with_lightyear_on_community_leak():
    # A property both tools can state without ghosts.
    config = build_figure1()
    prop = SafetyProperty(
        location=Edge("R2", "ISP2"),
        predicate=Not(HasCommunity(TRANSIT_COMMUNITY)),
        name="no-community-leak",
    )
    result = MinesweeperVerifier(config).verify(prop)
    assert result.verified

    from repro.core.properties import InvariantMap
    from repro.core.safety import verify_safety
    from repro.lang.predicates import TruePred

    inv = InvariantMap(config.topology, default=TruePred())
    inv.set_edge("R2", "ISP2", Not(HasCommunity(TRANSIT_COMMUNITY)))
    report = verify_safety(config, prop, inv)
    assert report.passed == result.verified


def test_router_location_property():
    # Routes selected at R1 from ISP1 always carry the transit community.
    config = build_figure1()
    ghost, __ = _no_transit_setup(config)
    prop = SafetyProperty(
        location="R1",
        predicate=GhostIs("FromISP1").implies(HasCommunity(TRANSIT_COMMUNITY)),
        name="tagged-at-r1",
    )
    result = MinesweeperVerifier(config, ghosts=(ghost,)).verify(prop)
    assert result.verified


def test_encoding_size_grows_superlinearly():
    ghost_sizes = {}
    for n in (3, 6):
        config = build_full_mesh(n)
        ghost = GhostAttribute.source_tracker(
            "FromE1", config.topology, [Edge("E1", "R1")]
        )
        prop = SafetyProperty(
            location=Edge("R2", "E2"),
            predicate=Not(GhostIs("FromE1")),
        )
        verifier = MinesweeperVerifier(config, ghosts=(ghost,))
        ghost_sizes[n] = verifier.encoding_size(prop)
    vars3, __ = ghost_sizes[3]
    vars6, __ = ghost_sizes[6]
    # Doubling the mesh should far more than double the encoding.
    assert vars6 > 3 * vars3


def test_timeout_reports_timed_out():
    config = build_full_mesh(4)
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1"))
    )
    result = MinesweeperVerifier(config, ghosts=(ghost,)).verify(
        prop, conflict_budget=1
    )
    # Either it solves within one conflict or it reports a timeout; both
    # are acceptable, but a timeout must be flagged as such.
    if not result.verified:
        assert result.timed_out or result.counterexample is not None


def test_fullmesh_no_transit_verified_small():
    config = build_full_mesh(3)
    ghost = GhostAttribute.source_tracker(
        "FromE1", config.topology, [Edge("E1", "R1")]
    )
    prop = SafetyProperty(
        location=Edge("R2", "E2"), predicate=Not(GhostIs("FromE1"))
    )
    result = MinesweeperVerifier(config, ghosts=(ghost,)).verify(prop)
    assert result.verified
