"""Tests for the rcc-style local-only baseline."""

from __future__ import annotations

from repro.baselines.localonly import LocalOnlyChecker
from repro.bgp.policy import DeleteCommunity, RouteMap, RouteMapClause
from repro.bgp.topology import Edge
from repro.core.safety import verify_safety
from repro.lang.ghost import GhostAttribute
from repro.lang.predicates import GhostIs, HasCommunity, Implies, Not, TruePred
from repro.workloads.figure1 import TRANSIT_COMMUNITY, build_figure1

from tests.core.conftest import no_transit_invariants, no_transit_property


def _ghost(config):
    return GhostAttribute.source_tracker(
        "FromISP1", config.topology, [Edge("ISP1", "R1")]
    )


KEY = Implies(GhostIs("FromISP1"), HasCommunity(TRANSIT_COMMUNITY))


def _obvious_checks(config, ghost) -> LocalOnlyChecker:
    checker = LocalOnlyChecker(config, ghosts=(ghost,))
    checker.add_import_check(Edge("ISP1", "R1"), TruePred(), KEY)
    checker.add_export_check(Edge("R2", "ISP2"), KEY, Not(GhostIs("FromISP1")))
    return checker


def test_user_listed_checks_pass_on_clean_network():
    config = build_figure1()
    result = _obvious_checks(config, _ghost(config)).run()
    assert result.passed
    assert len(result.outcomes) == 2


def test_user_listed_checks_catch_a_directly_checked_bug():
    config = build_figure1(buggy_r1_tagging=True)
    result = _obvious_checks(config, _ghost(config)).run()
    assert not result.passed  # the bug is on a listed edge: caught


def test_local_only_misses_internal_stripping_bug():
    # §2's motivating subtlety: "no other policy strips community 100:1" is
    # the check users forget.  The local-only baseline (just the two
    # obvious checks) passes; Lightyear's generated closure fails.
    config = build_figure1()
    config.routers["R2"].neighbors["R1"].import_map = RouteMap(
        "STRIP",
        (RouteMapClause(10, actions=(DeleteCommunity(TRANSIT_COMMUNITY),)),),
    )
    ghost = _ghost(config)

    local = _obvious_checks(config, ghost).run()
    assert local.passed  # bug missed

    report = verify_safety(
        config, no_transit_property(), no_transit_invariants(config), ghosts=(ghost,)
    )
    assert not report.passed  # bug caught
    assert {f.blamed_router for f in report.failures} == {"R2"}
