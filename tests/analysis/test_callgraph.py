"""The interprocedural layer: symbol facts, composition, resolution.

Exercises :mod:`repro.analysis.callgraph` directly — per-file extraction
shape, then graph composition over a small multi-module project — and
pins the resolution features the checkers rely on: imports (absolute and
relative), ``self`` dispatch with a base-class walk, receiver
annotations, constructor chains, and higher-order may-call edges.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis.callgraph import (
    CALLGRAPH_KEY,
    build_call_graph,
    extract_callgraph_facts,
    module_name_for,
)
from repro.analysis.registry import Project


def _facts(source: str, path: str = "mod.py"):
    return extract_callgraph_facts(ast.parse(source), source, path)


def _project(files: dict[str, str]) -> Project:
    project = Project(root=Path("."))
    for path, source in files.items():
        project.facts[path] = {CALLGRAPH_KEY: _facts(source, path)}
    return project


def _graph(files: dict[str, str]):
    return build_call_graph(_project(files))


class TestModuleNames:
    @pytest.mark.parametrize(
        ("path", "expected"),
        [
            ("src/repro/core/safety.py", "repro.core.safety"),
            ("src/repro/core/__init__.py", "repro.core"),
            ("fixtures/caller.py", "fixtures.caller"),
            ("mod.py", "mod"),
        ],
    )
    def test_module_name_for(self, path, expected):
        assert module_name_for(path) == expected


class TestExtraction:
    def test_function_record_params_and_defaults(self):
        facts = _facts(
            "def f(a, b=1, *args, c, d=2, **kw):\n    return a\n"
        )
        (func,) = facts["functions"]
        assert func["params"] == ["a", "b"]
        assert func["kwonly"] == ["c", "d"]
        assert set(func["defaulted"]) == {"b", "d"}
        assert func["vararg"] and func["kwarg"]

    def test_call_argument_descriptors(self):
        facts = _facts(
            "def f(x, y):\n"
            "    g(x, 1, key=y, other=2)\n"
        )
        (func,) = facts["functions"]
        (call,) = func["calls"]
        assert call["target"] == "g"
        assert call["pos"] == ["x", None]
        assert call["kw"] == {"key": "y", "other": None}

    def test_star_expansion_is_marked(self):
        facts = _facts("def f(a):\n    g(*a)\n    h(**a)\n")
        calls = facts["functions"][0]["calls"]
        assert [c["star"] for c in calls] == [True, False]
        assert [c["dstar"] for c in calls] == [False, True]

    def test_module_state_and_shared_declaration(self):
        facts = _facts(
            "SHARED_STATE = ('_cache',)\n"
            "_cache = {}\n"
            "_names = []\n"
            "LIMIT = 3\n"
        )
        assert set(facts["module_state"]) == {"_cache", "_names"}
        assert facts["shared"] == ["_cache"]

    def test_lock_guard_detection(self):
        facts = _facts(
            "import threading\n"
            "_LOCK = threading.Lock()\n"
            "_cache = {}\n"
            "def guarded(k, v):\n"
            "    with _LOCK:\n"
            "        _cache[k] = v\n"
            "def bare(k, v):\n"
            "    _cache[k] = v\n"
        )
        by_name = {f["name"]: f for f in facts["functions"]}
        (write,) = by_name["guarded"]["global_writes"]
        assert write["guarded"] is True
        (write,) = by_name["bare"]["global_writes"]
        assert write["guarded"] is False

    def test_nested_defs_fold_into_encloser(self):
        facts = _facts(
            "def outer(pool, items):\n"
            "    def _work(item):\n"
            "        return solve(item)\n"
            "    return pool.map(_work, items)\n"
        )
        (func,) = facts["functions"]
        assert func["nested_defs"] == [["_work", 2]]
        assert "solve" in [c["target"] for c in func["calls"]]

    def test_shim_module_needs_the_declared_phrase(self):
        shim = _facts('"""Compatibility shim over real_mod."""\n')
        assert shim["is_shim_module"]
        about = _facts('"""Helpers for analysing shims."""\n')
        assert not about["is_shim_module"]

    def test_deprecation_warning_marks_the_class(self):
        facts = _facts(
            "import warnings\n"
            "class Old:\n"
            "    def __init__(self):\n"
            "        warnings.warn('gone', DeprecationWarning)\n"
        )
        (cls,) = facts["classes"]
        assert cls["warns_deprecation"]


class TestResolution:
    def test_cross_module_import_edge_with_forwarding(self):
        graph = _graph({
            "a.py": (
                "from b import callee\n"
                "def caller(budget=None):\n"
                "    callee(1, budget=budget)\n"
            ),
            "b.py": "def callee(x, budget=None):\n    return x\n",
        })
        (edge,) = graph.edges_from("a:caller")
        assert edge.callee == "b:callee"
        assert edge.received == frozenset({"x", "budget"})
        assert dict(edge.forwarded) == {"budget": "budget"}

    def test_relative_import_resolves_against_the_package(self):
        graph = _graph({
            "src/pkg/a.py": (
                "from .b import helper\n"
                "def caller():\n"
                "    helper()\n"
            ),
            "src/pkg/b.py": "def helper():\n    return 1\n",
        })
        (edge,) = graph.edges_from("pkg.a:caller")
        assert edge.callee == "pkg.b:helper"

    def test_self_method_walks_project_resolved_bases(self):
        graph = _graph({
            "base.py": "class Base:\n    def helper(self, deadline_s=None):\n        return 1\n",
            "sub.py": (
                "from base import Base\n"
                "class Sub(Base):\n"
                "    def run(self):\n"
                "        return self.helper()\n"
            ),
        })
        (edge,) = graph.edges_from("sub:Sub.run")
        assert edge.callee == "base:Base.helper"

    def test_annotated_receiver_resolves_the_method(self):
        graph = _graph({
            "checks.py": (
                "class LocalCheck:\n"
                "    def run(self, config, deadline_s=None):\n"
                "        return config\n"
            ),
            "driver.py": (
                "from checks import LocalCheck\n"
                "def drive(check: LocalCheck, config):\n"
                "    return check.run(config)\n"
            ),
        })
        (edge,) = graph.edges_from("driver:drive")
        assert edge.callee == "checks:LocalCheck.run"
        # `self` is skipped: config lands on the first real parameter.
        assert "config" in edge.received

    def test_constructor_and_constructor_chain(self):
        graph = _graph({
            "m.py": (
                "class Backend:\n"
                "    def __init__(self, jobs):\n"
                "        self.jobs = jobs\n"
                "    def run(self, batch):\n"
                "        return batch\n"
                "def go(batch):\n"
                "    return Backend(2).run(batch)\n"
            ),
        })
        callees = {edge.callee for edge in graph.edges_from("m:go")}
        assert callees == {"m:Backend.__init__", "m:Backend.run"}

    def test_function_argument_creates_maycall_edge(self):
        graph = _graph({
            "m.py": (
                "def work(item):\n"
                "    return item\n"
                "class Pool:\n"
                "    def map(self, fn, items):\n"
                "        return [fn(i) for i in items]\n"
                "def fan_out(pool: Pool, items):\n"
                "    return pool.map(work, items)\n"
            ),
        })
        kinds = {
            (edge.callee, edge.kind) for edge in graph.edges_from("m:fan_out")
        }
        assert ("m:work", "maycall") in kinds
        assert ("m:Pool.map", "call") in kinds

    def test_unresolvable_calls_produce_no_edges(self):
        graph = _graph({
            "m.py": "import os\ndef f(x):\n    return os.path.join(x)\n",
        })
        assert graph.edges_from("m:f") == []

    def test_reachable_closure(self):
        graph = _graph({
            "m.py": (
                "def a():\n    return b()\n"
                "def b():\n    return c()\n"
                "def c():\n    return 1\n"
                "def island():\n    return 2\n"
            ),
        })
        assert graph.reachable(["m:a"]) == {"m:a", "m:b", "m:c"}


class TestProjectIntegration:
    def test_call_graph_is_built_once_and_cached(self, tmp_path):
        (tmp_path / "m.py").write_text("def f():\n    return 1\n")
        from repro.analysis.engine import LintOptions, run_lint

        options = LintOptions(root=tmp_path, paths=[tmp_path])
        run_lint(options)  # exercises the engine path end to end

        project = _project({"m.py": "def f():\n    return 1\n"})
        graph = project.call_graph()
        assert project.call_graph() is graph
        assert "m:f" in graph.functions

    def test_callgraph_facts_ride_the_fact_cache(self, tmp_path):
        from repro.analysis.cache import FactCache, content_digest
        from repro.analysis.engine import LintOptions, run_lint

        (tmp_path / "m.py").write_text("def f():\n    return 1\n")
        cache_file = tmp_path / "cache" / "lint-cache.json"
        run_lint(LintOptions(root=tmp_path, paths=[tmp_path], cache_file=cache_file))

        from repro.analysis.callgraph import CALLGRAPH_VERSION
        from repro.analysis.registry import all_checkers

        versions = {c.id: c.version for c in all_checkers()}
        versions[CALLGRAPH_KEY] = CALLGRAPH_VERSION
        digest = content_digest((tmp_path / "m.py").read_bytes())
        cached = FactCache(cache_file).lookup("m.py", digest, versions)
        assert cached is not None and CALLGRAPH_KEY in cached
        assert cached[CALLGRAPH_KEY]["module"] == "m"

        # Bumping the call-graph fact version invalidates the entry.
        versions[CALLGRAPH_KEY] = CALLGRAPH_VERSION + 1
        assert FactCache(cache_file).lookup("m.py", digest, versions) is None
