"""Framework behaviour: suppression syntax, the fact cache, the ratchet."""

import json
import shutil
from pathlib import Path

from repro.analysis.cache import CACHE_VERSION, FactCache, content_digest
from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import (
    is_suppressed,
    parse_suppressions,
    suppression_index,
)

FIXTURES = Path(__file__).parent / "fixtures"
BAD_DIGEST = FIXTURES / "digest_coverage" / "bad_external_asns.py"
GOOD_DIGEST = FIXTURES / "digest_coverage" / "good_covered.py"


class TestSuppressionSyntax:
    def test_same_line_suppression(self):
        (supp,) = parse_suppressions(
            "x = risky()  # repro: ignore[pickle-safety] -- closed in __exit__\n"
        )
        assert supp.line == supp.comment_line == 1
        assert supp.checker_ids == ("pickle-safety",)
        assert supp.reason == "closed in __exit__"

    def test_standalone_comment_forwards_to_next_code_line(self):
        source = (
            "def f():\n"
            "    # repro: ignore[deadline-discipline] -- trail is finite\n"
            "\n"
            "    while True:\n"
            "        pass\n"
        )
        (supp,) = parse_suppressions(source)
        assert supp.comment_line == 2
        assert supp.line == 4  # the `while True:` line, past the blank

    def test_multiple_ids_and_no_reason(self):
        (supp,) = parse_suppressions("y = 1  # repro: ignore[a, b]\n")
        assert supp.checker_ids == ("a", "b")
        assert supp.reason == ""

    def test_is_suppressed_matches_id_and_wildcard(self):
        index = suppression_index(
            "a = 1  # repro: ignore[digest-coverage] -- covered at runtime\n"
            "b = 2  # repro: ignore[*] -- generated code\n"
        )
        assert is_suppressed(index, 1, "digest-coverage")
        assert not is_suppressed(index, 1, "pickle-safety")
        assert is_suppressed(index, 2, "pickle-safety")
        assert not is_suppressed(index, 3, "digest-coverage")

    def test_plain_comments_are_not_suppressions(self):
        assert parse_suppressions("x = 1  # repro: this is just prose\n") == []

    def test_reasonless_suppression_is_a_warning_not_a_failure(self, lint, tmp_path):
        (tmp_path / "mod.py").write_text(
            "x = 1  # repro: ignore[digest-coverage]\n"
        )
        result = lint(tmp_path)
        (finding,) = result.fresh
        assert finding.checker == "suppression"
        assert finding.severity is Severity.WARNING
        assert not result.failed  # warnings never fail the gate

    def test_suppressed_findings_are_counted_not_dropped(self, lint, tmp_path):
        source = BAD_DIGEST.read_text().replace(
            "        self.external_asns = {}",
            "        # repro: ignore[digest-coverage] -- covered by a runtime assert\n"
            "        self.external_asns = {}",
        )
        (tmp_path / "net.py").write_text(source)
        result = lint(tmp_path, checkers=["digest-coverage"])
        assert result.fresh == []
        assert len(result.suppressed) == 1


class TestFactCache:
    VERSIONS = {"digest-coverage": 1, "pickle-safety": 1}

    def test_roundtrip_and_persistence(self, tmp_path):
        cache_file = tmp_path / "lint-cache.json"
        digest = content_digest(b"source")
        cache = FactCache(cache_file)
        cache.store("a.py", digest, self.VERSIONS, {"digest-coverage": {"k": 1}})
        cache.save()
        reloaded = FactCache(cache_file)
        assert reloaded.lookup("a.py", digest, self.VERSIONS) == {
            "digest-coverage": {"k": 1}
        }

    def test_content_change_misses(self, tmp_path):
        cache = FactCache(None)
        cache.store("a.py", content_digest(b"old"), self.VERSIONS, {})
        assert cache.lookup("a.py", content_digest(b"new"), self.VERSIONS) is None

    def test_checker_version_bump_misses(self, tmp_path):
        cache = FactCache(None)
        cache.store("a.py", content_digest(b"src"), self.VERSIONS, {})
        bumped = dict(self.VERSIONS, **{"digest-coverage": 2})
        assert cache.lookup("a.py", content_digest(b"src"), bumped) is None

    def test_cache_layout_version_mismatch_discards_file(self, tmp_path):
        cache_file = tmp_path / "lint-cache.json"
        cache_file.write_text(json.dumps(
            {"version": CACHE_VERSION + 1,
             "files": {"a.py": {"digest": "d", "checker_versions": {}, "facts": {}}}}
        ))
        assert FactCache(cache_file).lookup("a.py", "d", {}) is None

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache_file = tmp_path / "lint-cache.json"
        cache_file.write_text("{broken")
        assert FactCache(cache_file).lookup("a.py", "d", {}) is None

    def test_prune_drops_dead_entries(self, tmp_path):
        cache_file = tmp_path / "lint-cache.json"
        digest = content_digest(b"x")
        cache = FactCache(cache_file)
        cache.store("dead.py", digest, {}, {})
        cache.store("live.py", digest, {}, {})
        cache.prune({"live.py"})
        cache.save()
        reloaded = FactCache(cache_file)
        assert reloaded.lookup("dead.py", digest, {}) is None
        assert reloaded.lookup("live.py", digest, {}) == {}


class TestEngineCaching:
    def test_warm_run_hits_and_edit_invalidates(self, lint, tmp_path):
        for name in ("bad_external_asns.py", "good_covered.py"):
            shutil.copy(FIXTURES / "digest_coverage" / name, tmp_path / name)
        cache_file = tmp_path / "cache" / "lint-cache.json"

        cold = lint(tmp_path, cache_file=cache_file)
        assert (cold.files_analyzed, cold.files_from_cache) == (2, 0)

        warm = lint(tmp_path, cache_file=cache_file)
        assert (warm.files_analyzed, warm.files_from_cache) == (2, 2)
        assert {f.key() for f in warm.fresh} == {f.key() for f in cold.fresh}

        edited = (tmp_path / "good_covered.py").read_text() + "\n# touched\n"
        (tmp_path / "good_covered.py").write_text(edited)
        mixed = lint(tmp_path, cache_file=cache_file)
        assert (mixed.files_analyzed, mixed.files_from_cache) == (2, 1)

    def test_parse_error_is_a_finding_not_a_crash(self, lint, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = lint(tmp_path)
        (finding,) = result.fresh
        assert finding.checker == "parse-error"
        assert "syntax error" in finding.message


def _adopt_baseline(path: Path, keys) -> None:
    """Simulate historical debt: adopting into the baseline is a manual,
    reviewed edit — ``--update-baseline`` only ever shrinks the file."""
    path.write_text(json.dumps({"findings": sorted(keys)}))


BAD_KEY = "digest-coverage:net.py:Network.external_asns"


class TestBaselineRatchet:
    def test_fresh_then_baselined_then_resolved(self, lint, tmp_path):
        target = tmp_path / "net.py"
        shutil.copy(BAD_DIGEST, target)
        baseline = tmp_path / "baseline.json"
        opts = dict(checkers=["digest-coverage"], baseline_file=baseline)

        first = lint(tmp_path, **opts)
        assert first.failed and len(first.fresh) == 1

        # Known debt (manually adopted) passes the gate but stays visible.
        _adopt_baseline(baseline, [f.key() for f in first.fresh])
        again = lint(tmp_path, **opts)
        assert not again.failed
        assert len(again.baselined) == 1 and again.fresh == []

        # Fixing the debt leaves a resolved entry: the ratchet.
        shutil.copy(GOOD_DIGEST, target)
        fixed = lint(tmp_path, **opts)
        assert fixed.fresh == [] and fixed.baselined == []
        assert fixed.resolved == [BAD_KEY]

        ratcheted = lint(tmp_path, update_baseline=True, **opts)
        assert ratcheted.resolved == []
        assert json.loads(baseline.read_text())["findings"] == []

    def test_update_baseline_never_adopts_fresh_findings(self, lint, tmp_path):
        # The shrink-only contract: with fresh findings present,
        # --update-baseline leaves them fresh (the run still fails) and
        # the written baseline does not contain them.
        shutil.copy(BAD_DIGEST, tmp_path / "net.py")
        baseline = tmp_path / "baseline.json"
        opts = dict(checkers=["digest-coverage"], baseline_file=baseline)

        result = lint(tmp_path, update_baseline=True, **opts)
        assert result.failed
        assert [f.key() for f in result.fresh] == [BAD_KEY]
        assert json.loads(baseline.read_text())["findings"] == []

        # And the next run still fails: nothing was buried.
        assert lint(tmp_path, **opts).failed

    def test_update_baseline_shrinks_but_keeps_live_debt(self, lint, tmp_path):
        shutil.copy(BAD_DIGEST, tmp_path / "net.py")
        baseline = tmp_path / "baseline.json"
        stale = "digest-coverage:gone.py:Old.field"
        _adopt_baseline(baseline, [BAD_KEY, stale])
        opts = dict(checkers=["digest-coverage"], baseline_file=baseline)

        result = lint(tmp_path, update_baseline=True, **opts)
        assert not result.failed and len(result.baselined) == 1
        # The stale entry is dropped, the live one is kept: shrink-only.
        assert json.loads(baseline.read_text())["findings"] == [BAD_KEY]

    def test_update_baseline_composes_with_update_manifest(self, lint, tmp_path):
        # Both maintenance flags in one run: the manifest is regenerated,
        # the baseline shrinks, and a fresh finding still fails the run —
        # neither flag can be used to bury it.
        shutil.copy(BAD_DIGEST, tmp_path / "net.py")
        # The manifest is only written when something under analysis
        # actually persists a versioned cache.
        (tmp_path / "store.py").write_text("CACHE_FORMAT = 1\n")
        baseline = tmp_path / "baseline.json"
        manifest = tmp_path / "cache-shape.json"
        stale = "digest-coverage:gone.py:Old.field"
        _adopt_baseline(baseline, [stale])

        result = lint(
            tmp_path,
            checkers=["digest-coverage", "cache-format-discipline"],
            baseline_file=baseline,
            update_baseline=True,
            manifest_file=manifest,
            update_manifest=True,
        )
        assert manifest.exists()  # --update-manifest took effect
        assert json.loads(baseline.read_text())["findings"] == []  # shrunk
        assert result.failed  # the fresh finding survived both flags
        assert [f.key() for f in result.fresh] == [BAD_KEY]

    def test_baseline_does_not_cover_new_findings_at_other_sites(self, lint, tmp_path):
        shutil.copy(BAD_DIGEST, tmp_path / "net.py")
        baseline = tmp_path / "baseline.json"
        opts = dict(checkers=["digest-coverage"], baseline_file=baseline)
        _adopt_baseline(baseline, [BAD_KEY])

        # A second, distinct gap gets a new key and fails the run even
        # though the first one is baselined.
        source = (tmp_path / "net.py").read_text().replace(
            "        self.external_asns = {}",
            "        self.external_asns = {}\n        self.bgp_timers = {}",
        )
        (tmp_path / "net.py").write_text(source)
        result = lint(tmp_path, **opts)
        assert result.failed
        assert [f.key() for f in result.fresh] == [
            "digest-coverage:net.py:Network.bgp_timers"
        ]
        assert len(result.baselined) == 1

    def test_baseline_keys_are_line_independent(self, lint, tmp_path):
        shutil.copy(BAD_DIGEST, tmp_path / "net.py")
        baseline = tmp_path / "baseline.json"
        opts = dict(checkers=["digest-coverage"], baseline_file=baseline)
        _adopt_baseline(baseline, [BAD_KEY])

        # Shift every line down; the finding key must still match.
        (tmp_path / "net.py").write_text(
            "# moved\n# moved\n" + (tmp_path / "net.py").read_text()
        )
        result = lint(tmp_path, **opts)
        assert not result.failed and len(result.baselined) == 1


def test_finding_render_and_key():
    finding = Finding(
        checker="digest-coverage",
        path="src/repro/bgp/config.py",
        line=42,
        message="field not digested",
        hint="add it",
        symbol="NetworkConfig.external_asns",
    )
    assert finding.key() == (
        "digest-coverage:src/repro/bgp/config.py:NetworkConfig.external_asns"
    )
    rendered = finding.render()
    assert "src/repro/bgp/config.py:42" in rendered
    assert "digest-coverage" in rendered
