"""Each checker against its positive/negative fixtures.

The positive fixtures reproduce the historical bug shapes the checkers
exist for: the ``external_asns`` digest gap, the ``_FrozenGhost`` local
class, the PR 6 deadline-free solver loop, and an unbumped
``CACHE_FORMAT``.
"""

from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"


def _keys(findings):
    return {finding.key() for finding in findings}


class TestDigestCoverage:
    DIR = FIXTURES / "digest_coverage"

    def test_flags_the_historical_external_asns_gap(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_external_asns.py"],
                      checkers=["digest-coverage"])
        assert _keys(result.fresh) == {
            "digest-coverage:bad_external_asns.py:Network.external_asns"
        }
        (finding,) = result.fresh
        assert "external_asns" in finding.message
        assert finding.line > 0
        assert result.failed

    def test_project_wide_coverage_clears_the_field(self, lint):
        result = lint(self.DIR, [self.DIR / "good_covered.py"],
                      checkers=["digest-coverage"])
        assert result.fresh == []

    def test_coverage_is_a_union_across_files(self, lint):
        # The bad file's gap is closed by the good file's network_digest
        # when both are in the analysis set: coverage is class-blind and
        # project-wide, exactly like the real repo's incremental layer.
        result = lint(self.DIR, [self.DIR], checkers=["digest-coverage"])
        assert result.fresh == []


class TestPickleSafety:
    DIR = FIXTURES / "pickle_safety"

    def test_flags_the_frozen_ghost_shape(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_frozen_ghost.py"],
                      checkers=["pickle-safety"])
        assert _keys(result.fresh) == {
            "pickle-safety:bad_frozen_ghost.py:_FrozenGhost"
        }
        (finding,) = result.fresh
        assert "inside a function" in finding.message

    def test_flags_lambda_slots_and_handle(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_payload.py"],
                      checkers=["pickle-safety"])
        assert _keys(result.fresh) == {
            "pickle-safety:bad_payload.py:Outcome.notes",
            "pickle-safety:bad_payload.py:SlottedCheck",
            "pickle-safety:bad_payload.py:LogHolder.handle",
        }

    def test_picklable_equivalents_are_clean(self, lint):
        result = lint(self.DIR, [self.DIR / "good_payload.py"],
                      checkers=["pickle-safety"])
        assert result.fresh == []

    def test_unreachable_classes_are_not_flagged(self, lint, tmp_path):
        # Same defects, but no PICKLE_ROOTS declaration and no default
        # root name: nothing is reachable, nothing is flagged.
        source = (self.DIR / "bad_payload.py").read_text()
        source = source.replace('PICKLE_ROOTS = ("Outcome",)\n', "")
        (tmp_path / "unreachable.py").write_text(source)
        result = lint(tmp_path, checkers=["pickle-safety"])
        assert result.fresh == []


class TestDeadlineDiscipline:
    DIR = FIXTURES / "deadline_discipline"

    def test_flags_deadline_free_loop_and_unguarded_remaining(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_loops.py"],
                      checkers=["deadline-discipline"])
        keys = _keys(result.fresh)
        assert any(key.endswith(":dispatch:remaining") for key in keys)
        assert any(":search:while@" in key for key in keys)
        assert len(keys) == 2

    def test_sampled_and_guarded_code_is_clean(self, lint):
        result = lint(self.DIR, [self.DIR / "good_loops.py"],
                      checkers=["deadline-discipline"])
        assert result.fresh == []
        # The structurally-bounded luby loop is silenced by its reasoned
        # suppression, not by being invisible to the checker.
        assert len(result.suppressed) == 1
        assert result.suppressed[0].checker == "deadline-discipline"

    def test_files_without_the_marker_are_exempt(self, lint):
        result = lint(self.DIR, [self.DIR / "not_hot.py"],
                      checkers=["deadline-discipline"])
        assert result.fresh == []

    def test_flags_scheduler_dispatch_without_stop_discipline(self, lint):
        # The PR 9 shape: a round-draining dispatch loop plus a computed
        # per-batch effective deadline — both without stop discipline.
        result = lint(self.DIR, [self.DIR / "bad_scheduler.py"],
                      checkers=["deadline-discipline"])
        keys = _keys(result.fresh)
        assert any(":drain:while@" in key for key in keys)
        assert any(key.endswith(":effective:remaining") for key in keys)
        assert len(keys) == 2

    def test_scheduler_dispatch_with_stop_discipline_is_clean(self, lint):
        # The mirrored fixes: the loop samples the run deadline between
        # batches, and the remainder is clamped at expiry (the
        # ``BatchRequest.effective_deadline`` shape).
        result = lint(self.DIR, [self.DIR / "good_scheduler.py"],
                      checkers=["deadline-discipline"])
        assert result.fresh == []
        assert result.suppressed == []


class TestBudgetFlow:
    DIR = FIXTURES / "budget_flow"

    def test_flags_the_pr4_dropped_budget_chain(self, lint):
        # The real regression: the CLI threads conflict_budget into the
        # engine, the engine loops over checks and calls run_one without
        # it, and the parameter silently falls back to its default.  The
        # drop site is interprocedural — caller and callee live in
        # different files — so the whole fixture dir is the unit.
        result = lint(self.DIR, [self.DIR], checkers=["budget-flow"])
        assert (
            "budget-flow:bad_chain_engine.py:verify_all->run_one:conflict_budget"
            in _keys(result.fresh)
        )

    def test_forwarding_chain_is_clean(self, lint):
        result = lint(
            self.DIR,
            [self.DIR / "good_chain_cli.py",
             self.DIR / "good_chain_engine.py",
             self.DIR / "good_chain_helpers.py"],
            checkers=["budget-flow"],
        )
        assert result.fresh == []

    def test_flags_intra_class_method_drop(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_method_drop.py"],
                      checkers=["budget-flow"])
        assert _keys(result.fresh) == {
            "budget-flow:bad_method_drop.py:Runner.run->Runner._solve:deadline_s"
        }
        (finding,) = result.fresh
        assert "deadline_s" in finding.message

    def test_star_forwarding_is_trusted(self, lint):
        # **kwargs expansion makes the argument set uncertain; the checker
        # stays silent rather than guessing.
        result = lint(self.DIR, [self.DIR / "good_star_forward.py"],
                      checkers=["budget-flow"])
        assert result.fresh == []


class TestConcurrencyDiscipline:
    DIR = FIXTURES / "concurrency_discipline"

    def test_flags_unguarded_cache_reached_via_pool_map(self, lint):
        # Scheduler.run -> pool.map(_solve, ...) is a may-call edge; the
        # worker's bare module-dict write is flagged even though no
        # dispatch method touches the cache directly.
        result = lint(self.DIR, [self.DIR / "bad_dispatch.py"],
                      checkers=["concurrency-discipline"])
        assert _keys(result.fresh) == {
            "concurrency-discipline:bad_dispatch.py:_solve:_RESULT_CACHE"
        }

    def test_lock_guarded_write_is_clean(self, lint):
        result = lint(self.DIR, [self.DIR / "good_dispatch_locked.py"],
                      checkers=["concurrency-discipline"])
        assert result.fresh == []

    def test_shared_state_declaration_is_honoured(self, lint):
        result = lint(self.DIR, [self.DIR / "good_dispatch_declared.py"],
                      checkers=["concurrency-discipline"])
        assert result.fresh == []

    def test_non_dispatch_classes_are_out_of_scope(self, lint):
        # Identical write, but the enclosing class is not a dispatcher
        # and nothing dispatched reaches it.
        result = lint(self.DIR, [self.DIR / "good_not_dispatched.py"],
                      checkers=["concurrency-discipline"])
        assert result.fresh == []

    def test_dispatcher_subclasses_inherit_the_obligation(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_subclass_attr.py"],
                      checkers=["concurrency-discipline"])
        assert _keys(result.fresh) == {
            "concurrency-discipline:bad_subclass_attr.py:LintScheduler.dispatch:_seen"
        }


class TestShimFidelity:
    DIR = FIXTURES / "shim_fidelity"

    def test_flags_logic_in_a_shim_module(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_shim_logic.py"],
                      checkers=["shim-fidelity"])
        assert _keys(result.fresh) == {
            "shim-fidelity:bad_shim_logic.py:module:try#1",
            "shim-fidelity:bad_shim_logic.py:verify:if#1",
        }

    def test_flags_shim_classes_and_their_subclasses(self, lint):
        # OldVerifier warns DeprecationWarning, so it is a shim; the
        # subclass TunedVerifier inherits the obligation.  The module's
        # ordinary make_workspace function is untouched.
        result = lint(self.DIR, [self.DIR / "bad_shim_class.py"],
                      checkers=["shim-fidelity"])
        assert _keys(result.fresh) == {
            "shim-fidelity:bad_shim_class.py:OldVerifier.verify:for#1",
            "shim-fidelity:bad_shim_class.py:OldVerifier.verify:if#1",
            "shim-fidelity:bad_shim_class.py:TunedVerifier.tuned:while#1",
        }

    def test_symbols_are_line_independent_ordinals(self, lint, tmp_path):
        # Prepending a comment block moves every line; the baseline keys
        # must not move with them.
        source = (self.DIR / "bad_shim_logic.py").read_text()
        doc_end = source.index('"""', 3) + len('"""\n')
        (tmp_path / "bad_shim_logic.py").write_text(
            source[:doc_end] + "\n# padding\n# padding\n# padding\n"
            + source[doc_end:]
        )
        result = lint(tmp_path, checkers=["shim-fidelity"])
        assert _keys(result.fresh) == {
            "shim-fidelity:bad_shim_logic.py:module:try#1",
            "shim-fidelity:bad_shim_logic.py:verify:if#1",
        }

    def test_pure_delegation_is_clean(self, lint):
        result = lint(self.DIR, [self.DIR / "good_shim.py"],
                      checkers=["shim-fidelity"])
        assert result.fresh == []
