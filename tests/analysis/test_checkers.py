"""Each checker against its positive/negative fixtures.

The positive fixtures reproduce the historical bug shapes the checkers
exist for: the ``external_asns`` digest gap, the ``_FrozenGhost`` local
class, the PR 6 deadline-free solver loop, and an unbumped
``CACHE_FORMAT``.
"""

from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"


def _keys(findings):
    return {finding.key() for finding in findings}


class TestDigestCoverage:
    DIR = FIXTURES / "digest_coverage"

    def test_flags_the_historical_external_asns_gap(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_external_asns.py"],
                      checkers=["digest-coverage"])
        assert _keys(result.fresh) == {
            "digest-coverage:bad_external_asns.py:Network.external_asns"
        }
        (finding,) = result.fresh
        assert "external_asns" in finding.message
        assert finding.line > 0
        assert result.failed

    def test_project_wide_coverage_clears_the_field(self, lint):
        result = lint(self.DIR, [self.DIR / "good_covered.py"],
                      checkers=["digest-coverage"])
        assert result.fresh == []

    def test_coverage_is_a_union_across_files(self, lint):
        # The bad file's gap is closed by the good file's network_digest
        # when both are in the analysis set: coverage is class-blind and
        # project-wide, exactly like the real repo's incremental layer.
        result = lint(self.DIR, [self.DIR], checkers=["digest-coverage"])
        assert result.fresh == []


class TestPickleSafety:
    DIR = FIXTURES / "pickle_safety"

    def test_flags_the_frozen_ghost_shape(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_frozen_ghost.py"],
                      checkers=["pickle-safety"])
        assert _keys(result.fresh) == {
            "pickle-safety:bad_frozen_ghost.py:_FrozenGhost"
        }
        (finding,) = result.fresh
        assert "inside a function" in finding.message

    def test_flags_lambda_slots_and_handle(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_payload.py"],
                      checkers=["pickle-safety"])
        assert _keys(result.fresh) == {
            "pickle-safety:bad_payload.py:Outcome.notes",
            "pickle-safety:bad_payload.py:SlottedCheck",
            "pickle-safety:bad_payload.py:LogHolder.handle",
        }

    def test_picklable_equivalents_are_clean(self, lint):
        result = lint(self.DIR, [self.DIR / "good_payload.py"],
                      checkers=["pickle-safety"])
        assert result.fresh == []

    def test_unreachable_classes_are_not_flagged(self, lint, tmp_path):
        # Same defects, but no PICKLE_ROOTS declaration and no default
        # root name: nothing is reachable, nothing is flagged.
        source = (self.DIR / "bad_payload.py").read_text()
        source = source.replace('PICKLE_ROOTS = ("Outcome",)\n', "")
        (tmp_path / "unreachable.py").write_text(source)
        result = lint(tmp_path, checkers=["pickle-safety"])
        assert result.fresh == []


class TestDeadlineDiscipline:
    DIR = FIXTURES / "deadline_discipline"

    def test_flags_deadline_free_loop_and_unguarded_remaining(self, lint):
        result = lint(self.DIR, [self.DIR / "bad_loops.py"],
                      checkers=["deadline-discipline"])
        keys = _keys(result.fresh)
        assert any(key.endswith(":dispatch:remaining") for key in keys)
        assert any(":search:while@" in key for key in keys)
        assert len(keys) == 2

    def test_sampled_and_guarded_code_is_clean(self, lint):
        result = lint(self.DIR, [self.DIR / "good_loops.py"],
                      checkers=["deadline-discipline"])
        assert result.fresh == []
        # The structurally-bounded luby loop is silenced by its reasoned
        # suppression, not by being invisible to the checker.
        assert len(result.suppressed) == 1
        assert result.suppressed[0].checker == "deadline-discipline"

    def test_files_without_the_marker_are_exempt(self, lint):
        result = lint(self.DIR, [self.DIR / "not_hot.py"],
                      checkers=["deadline-discipline"])
        assert result.fresh == []

    def test_flags_scheduler_dispatch_without_stop_discipline(self, lint):
        # The PR 9 shape: a round-draining dispatch loop plus a computed
        # per-batch effective deadline — both without stop discipline.
        result = lint(self.DIR, [self.DIR / "bad_scheduler.py"],
                      checkers=["deadline-discipline"])
        keys = _keys(result.fresh)
        assert any(":drain:while@" in key for key in keys)
        assert any(key.endswith(":effective:remaining") for key in keys)
        assert len(keys) == 2

    def test_scheduler_dispatch_with_stop_discipline_is_clean(self, lint):
        # The mirrored fixes: the loop samples the run deadline between
        # batches, and the remainder is clamped at expiry (the
        # ``BatchRequest.effective_deadline`` shape).
        result = lint(self.DIR, [self.DIR / "good_scheduler.py"],
                      checkers=["deadline-discipline"])
        assert result.fresh == []
        assert result.suppressed == []
