"""cache-format-discipline: the manifest workflow end to end.

Fixtures are copied to the same filename in a tmp dir so the manifest's
path-qualified shape keys line up between the "before" and "after"
versions — exactly how the checker sees an edit to a real file.
"""

import json
import shutil
from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures"

DIR = FIXTURES / "cache_format"
CHECKER = ["cache-format-discipline"]


def _setup(tmp_path, lint, version="v1"):
    shutil.copy(DIR / version / "store.py", tmp_path / "store.py")
    manifest = tmp_path / "cache-shape.json"
    result = lint(tmp_path, checkers=CHECKER,
                  manifest_file=manifest, update_manifest=True)
    assert result.fresh == []
    assert manifest.exists()
    return manifest


def test_update_manifest_writes_current_shapes(tmp_path, lint):
    manifest = _setup(tmp_path, lint)
    payload = json.loads(manifest.read_text())
    assert payload["cache_format"] == 1
    assert payload["shapes"]["store.py::Store.save:state"] == ["format", "tracker"]
    assert payload["shapes"]["store.py::Store.state_dict"] == ["digests", "outcomes"]
    assert payload["shapes"]["dataclass:Payload"] == ["digests", "outcomes"]


def test_unchanged_shapes_pass(tmp_path, lint):
    manifest = _setup(tmp_path, lint)
    result = lint(tmp_path, checkers=CHECKER, manifest_file=manifest)
    assert result.fresh == []


def test_shape_change_without_bump_is_flagged(tmp_path, lint):
    manifest = _setup(tmp_path, lint)
    shutil.copy(DIR / "v2_unbumped" / "store.py", tmp_path / "store.py")
    result = lint(tmp_path, checkers=CHECKER, manifest_file=manifest)
    symbols = {finding.symbol for finding in result.fresh}
    # All three persisted shapes changed; each gets its own finding.
    assert symbols == {
        "store.py::Store.save:state",
        "store.py::Store.state_dict",
        "dataclass:Payload",
    }
    assert result.failed
    assert any("without a CACHE_FORMAT bump" in f.message for f in result.fresh)


def test_bump_without_regenerating_manifest_is_stale(tmp_path, lint):
    manifest = _setup(tmp_path, lint)
    source = (DIR / "v2_unbumped" / "store.py").read_text()
    (tmp_path / "store.py").write_text(
        source.replace("CACHE_FORMAT = 1", "CACHE_FORMAT = 2")
    )
    result = lint(tmp_path, checkers=CHECKER, manifest_file=manifest)
    assert [finding.symbol for finding in result.fresh] == ["manifest-stale"]


def test_bump_plus_regenerate_is_clean(tmp_path, lint):
    manifest = _setup(tmp_path, lint)
    source = (DIR / "v2_unbumped" / "store.py").read_text()
    (tmp_path / "store.py").write_text(
        source.replace("CACHE_FORMAT = 1", "CACHE_FORMAT = 2")
    )
    result = lint(tmp_path, checkers=CHECKER,
                  manifest_file=manifest, update_manifest=True)
    assert result.fresh == []
    result = lint(tmp_path, checkers=CHECKER, manifest_file=manifest)
    assert result.fresh == []
    assert json.loads(manifest.read_text())["cache_format"] == 2


def test_missing_manifest_is_an_error(tmp_path, lint):
    shutil.copy(DIR / "v1" / "store.py", tmp_path / "store.py")
    result = lint(tmp_path, checkers=CHECKER,
                  manifest_file=tmp_path / "nope.json")
    assert [finding.symbol for finding in result.fresh] == ["manifest-missing"]


def test_corrupt_manifest_is_an_error(tmp_path, lint):
    shutil.copy(DIR / "v1" / "store.py", tmp_path / "store.py")
    manifest = tmp_path / "cache-shape.json"
    manifest.write_text("{not json")
    result = lint(tmp_path, checkers=CHECKER, manifest_file=manifest)
    assert [finding.symbol for finding in result.fresh] == ["manifest-corrupt"]


def test_no_cache_format_means_nothing_to_discipline(tmp_path, lint):
    (tmp_path / "plain.py").write_text("def f():\n    return 1\n")
    result = lint(tmp_path, checkers=CHECKER)
    assert result.fresh == []
