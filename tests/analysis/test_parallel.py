"""Parallel lint on the exec runtime: determinism, degradation, plumbing.

The headline contract is the differential test: a serial run and a
``--jobs 4`` run over the same tree must produce byte-identical output.
Everything else pins the pieces that make that hold — sorted plan order,
plan-order outcome routing, pickle-safe tasks, and the degrade-to-serial
path when the process pool is unavailable.
"""

import pickle
import shutil
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.execution import (
    LINT_STAGE,
    ExtractionOutcome,
    ExtractionTask,
    ProcessExtractionBackend,
    SerialExtractionBackend,
    build_lint_plan,
    run_extraction,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _task(rel: str, source: str, checkers=("digest-coverage",)) -> ExtractionTask:
    return ExtractionTask(rel=rel, data=source.encode(), checker_ids=tuple(checkers))


def _mixed_tree(tmp_path: Path) -> Path:
    """A tree with findings from several checkers — enough files that a
    process pool actually fans out."""
    for sub in ("digest_coverage", "budget_flow", "shim_fidelity"):
        for src in (FIXTURES / sub).glob("*.py"):
            shutil.copy(src, tmp_path / f"{sub}__{src.name}")
    return tmp_path


class TestDifferential:
    def test_serial_and_jobs4_output_is_byte_identical(self, tmp_path, capsys):
        root = _mixed_tree(tmp_path)
        base = ["--root", str(root), "--no-cache", str(root)]

        serial_code = main(base)
        serial_out = capsys.readouterr().out
        parallel_code = main(["--jobs", "4", *base])
        parallel_out = capsys.readouterr().out

        assert serial_code == parallel_code == 1  # the tree has findings
        assert serial_out == parallel_out

    def test_engine_findings_match_across_backends(self, lint, tmp_path):
        root = _mixed_tree(tmp_path)
        serial = lint(root, jobs=None)
        parallel = lint(root, jobs=4)

        def flat(result):
            return [
                (f.checker, f.path, f.line, f.symbol, f.message)
                for f in result.fresh
            ]

        assert flat(serial) == flat(parallel)
        assert len(serial.fresh) > 0

    def test_jobs_auto_resolves_and_matches_serial(self, lint, tmp_path):
        root = _mixed_tree(tmp_path)
        auto = lint(root, jobs="auto")
        serial = lint(root, jobs=None)
        assert [f.key() for f in auto.fresh] == [f.key() for f in serial.fresh]


class TestPlanShape:
    def test_one_group_per_file_in_sorted_order(self):
        tasks = [_task("b.py", "x = 1\n"), _task("a.py", "y = 2\n")]
        plan = build_lint_plan(tasks)
        assert [group.key for group in plan.groups] == [
            ("lint", "a.py"), ("lint", "b.py"),
        ]
        assert all(group.stage == LINT_STAGE for group in plan.groups)
        assert [stage.name for stage in plan.stages] == [LINT_STAGE]
        assert all(len(group.checks) == 1 for group in plan.groups)

    def test_outcomes_come_back_in_plan_order(self):
        tasks = [
            _task("c.py", "x = 1\n"),
            _task("a.py", "y = 2\n"),
            _task("b.py", "z = 3\n"),
        ]
        outcomes = run_extraction(tasks, jobs=None)
        assert [outcome.rel for outcome in outcomes] == ["a.py", "b.py", "c.py"]

    def test_empty_task_list_short_circuits(self):
        assert run_extraction([], jobs=4) == []


class TestPickling:
    def test_task_and_outcome_round_trip(self):
        task = _task("m.py", "def f():\n    return 1\n")
        clone = pickle.loads(pickle.dumps(task))
        outcome = clone.run(None, None, (), None)
        assert isinstance(outcome, ExtractionOutcome)
        assert outcome.rel == "m.py"
        assert pickle.loads(pickle.dumps(outcome)).rel == "m.py"

    def test_syntax_error_becomes_a_finding_not_a_crash(self):
        # A worker must never die on bad input: the parse failure rides
        # back as a finding, in-process and cross-process alike.
        task = _task("broken.py", "def f(:\n")
        outcome = task.run(None, None, (), None)
        assert outcome.findings
        assert any("syntax" in f.message.lower() for f in outcome.findings)


class TestDegradation:
    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        class BrokenPool:
            name = "process"

            def __init__(self, jobs):
                pass

            def run(self, request):
                return None  # the pool-unavailable contract

        import repro.analysis.execution as execution

        monkeypatch.setattr(execution, "ProcessExtractionBackend", BrokenPool)
        tasks = [_task("a.py", "x = 1\n"), _task("b.py", "y = 2\n")]
        with pytest.warns(RuntimeWarning, match="lint process pool unavailable"):
            outcomes = run_extraction(tasks, jobs=4)
        assert [outcome.rel for outcome in outcomes] == ["a.py", "b.py"]

    def test_single_task_never_pays_for_a_pool(self, monkeypatch):
        def explode(self, request):
            raise AssertionError("process pool engaged for a single file")

        monkeypatch.setattr(ProcessExtractionBackend, "run", explode)
        outcomes = run_extraction([_task("a.py", "x = 1\n")], jobs=4)
        assert [outcome.rel for outcome in outcomes] == ["a.py"]

    def test_backends_satisfy_the_structural_protocol(self):
        # Backend is a non-runtime-checkable Protocol; pin the structure
        # the scheduler relies on by hand.
        for backend in (SerialExtractionBackend(), ProcessExtractionBackend(2)):
            assert isinstance(backend.name, str)
            assert callable(backend.run)


class TestRealPool:
    def test_process_backend_really_extracts(self, lint, tmp_path):
        # End-to-end through a real ProcessPoolExecutor — the one test
        # that pays for worker start-up, kept small.
        root = _mixed_tree(tmp_path)
        result = lint(root, jobs=2)
        assert result.fresh
