"""Shared helpers for the static-analysis test suite."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def lint():
    """Run the lint engine over explicit paths with explicit options.

    No cache, baseline, or manifest unless the test passes one — each
    behaviour is exercised in isolation.
    """
    from repro.analysis.engine import LintOptions, run_lint

    def run(root, paths=None, checkers=None, **kwargs):
        options = LintOptions(
            root=Path(root),
            paths=[Path(p) for p in (paths or [root])],
            checker_ids=list(checkers) if checkers is not None else None,
            **kwargs,
        )
        return run_lint(options)

    return run
