"""Positive fixture: a scheduler-style dispatch loop with no stop discipline.

The PR 9 shape: a round-based loop draining ready batches, plus a
per-batch effective-deadline helper.  This variant neither samples the
run deadline between rounds nor guards the computed remainder against
having already expired.

# repro: hot-path
"""

import time


def drain(plan, run_deadline):
    pending = list(plan)
    results = []
    while True:
        if not pending:
            return results
        batch, pending = pending[0], pending[1:]
        results.append(batch.run())


def effective(per_check, run_deadline):
    remaining = run_deadline - time.monotonic()
    if per_check is not None:
        remaining = min(remaining, per_check)
    return remaining
