"""Positive fixture: a deadline-free solver loop and an unguarded remainder.

# repro: hot-path
"""

import time


def search(clauses):
    index = 0
    while True:
        index += 1
        if not clauses:
            return index


def dispatch(checks, run_deadline):
    results = []
    for check in checks:
        remaining = run_deadline - time.monotonic()
        results.append(check.run(deadline_s=remaining))
    return results
