"""Negative fixture: sampled, guarded, and suppressed-with-reason loops.

# repro: hot-path
"""

import time


def search(clauses, deadline):
    index = 0
    while True:
        index += 1
        if deadline is not None and time.monotonic() >= deadline:
            return None
        if not clauses:
            return index


def dispatch(checks, run_deadline):
    results = []
    for check in checks:
        if run_deadline is not None and time.monotonic() >= run_deadline:
            results.append(None)
            continue
        remaining = run_deadline - time.monotonic()
        results.append(check.run(deadline_s=remaining))
    return results


def luby(i):
    i += 1
    # repro: ignore[deadline-discipline] -- terminating recurrence
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1
