"""Negative fixture: the scheduler dispatch loop done right.

Mirrors ``bad_scheduler.py`` with the two fixes the checker wants: the
round loop samples the run deadline between batches (resolving the rest
of the plan without touching a solver), and the effective-deadline
helper clamps an already-expired remainder instead of letting a negative
budget flow into a solve.

# repro: hot-path
"""

import time


def drain(plan, run_deadline):
    pending = list(plan)
    results = []
    while True:
        if not pending:
            return results
        if run_deadline is not None and time.monotonic() >= run_deadline:
            results.extend(batch.skip() for batch in pending)
            return results
        batch, pending = pending[0], pending[1:]
        results.append(batch.run())


def effective(per_check, run_deadline):
    remaining = run_deadline - time.monotonic()
    if remaining <= 0.0:
        remaining = 0.0
    if per_check is not None:
        remaining = min(remaining, per_check)
    return remaining
