"""Negative fixture: no hot-path marker, so unbounded loops are fine."""


def poll_forever(queue):
    while True:
        message = queue.get()
        if message is None:
            return
