"""Regression fixture: the historical external_asns shape (PR 4).

``Network`` computes per-router digests and a topology fingerprint
exists elsewhere, but nothing anywhere digests ``external_asns`` — the
exact omission that made ``reverify`` reuse stale outcomes.
"""

import hashlib


class Network:
    def __init__(self, topology):
        self.topology = topology
        self.routers = {}
        self.external_asns = {}

    def policy_digests(self):
        return {name: rc.digest() for name, rc in self.routers.items()}


def topology_fp(config):
    return (
        tuple(sorted(config.topology.routers)),
        tuple(sorted(config.topology.edges)),
    )


def entry_fingerprint(kind, prop):
    return hashlib.sha256(repr((kind, prop)).encode()).hexdigest()
