"""Negative fixture: the same shape with external_asns covered.

A network-level digest function reads the field, so the class-blind
project-wide union covers it (the post-PR-4 state of the real repo).
"""

import hashlib


class Network:
    def __init__(self, topology):
        self.topology = topology
        self.routers = {}
        self.external_asns = {}

    def policy_digests(self):
        return {name: rc.digest() for name, rc in self.routers.items()}


def topology_fp(config):
    return (
        tuple(sorted(config.topology.routers)),
        tuple(sorted(config.topology.edges)),
    )


def network_digest(config):
    canon = tuple(sorted(config.external_asns.items()))
    return hashlib.sha256(repr(canon).encode()).hexdigest()
