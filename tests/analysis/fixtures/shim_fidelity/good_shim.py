"""Compatibility shim: pure delegation, exactly what a shim may contain."""

import warnings

from real_impl import real_verify, real_reverify


def verify(config, conflict_budget=None):
    warnings.warn("use real_impl.real_verify", DeprecationWarning, stacklevel=2)
    return real_verify(config, conflict_budget=conflict_budget)


class OldVerifier:
    """Use ``real_impl`` instead."""

    def __init__(self, config):
        warnings.warn("OldVerifier is deprecated", DeprecationWarning)
        self._config = config

    def verify(self):
        return real_verify(self._config)

    def reverify(self, edit):
        return real_reverify(self._config, edit)
