"""An ordinary module; the deprecation wrapper is a class, found by its
``DeprecationWarning`` (so ``make_workspace`` is not held to the rules)."""

import warnings


class OldVerifier:
    """Use ``Workspace`` instead."""

    def __init__(self, config):
        warnings.warn("OldVerifier is deprecated", DeprecationWarning)
        self._workspace = make_workspace(config)

    def verify(self, retries=3):
        for _ in range(retries):
            outcome = self._workspace.verify()
            if outcome is not None:
                return outcome
        return None


class TunedVerifier(OldVerifier):
    """Subclasses a shim, so it is held to the same fidelity rules."""

    def tuned(self):
        while self._workspace.pending():
            self._workspace.step()
        return self._workspace.verify()


def make_workspace(config):
    if config is None:
        raise ValueError("config required")
    return config
