"""Compatibility shim over the relocated verifier entry points.

A shim module (says so in the docstring's first line) that grew real
logic: a module-level fallback branch and a function that branches on
an argument instead of delegating.
"""

try:
    from real_impl import real_verify
except ImportError:
    real_verify = None


def verify(config, strict=False):
    if strict:
        return real_verify(config, level=2)
    return real_verify(config)
