"""The fixed chain, hop three: same helper shape as the bad chain."""


def run_one(check, config, conflict_budget=None):
    return check.solve(config, conflict_budget)
