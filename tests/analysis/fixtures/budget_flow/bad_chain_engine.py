"""The PR 4 bug, hop two: the engine holds the budget and drops it.

``run_one`` accepts ``conflict_budget`` with a ``None`` default, so the
missing argument is silently "unlimited" — the flag parses, the run
succeeds, and the budget does nothing.
"""

from bad_chain_helpers import run_one


def verify_all(config, conflict_budget=None):
    results = []
    for check in config:
        results.append(run_one(check, config))
    return results
