"""The fixed chain, hop two: the budget is forwarded at every boundary."""

from good_chain_helpers import run_one


def verify_all(config, conflict_budget=None):
    results = []
    for check in config:
        results.append(run_one(check, config, conflict_budget=conflict_budget))
    return results
