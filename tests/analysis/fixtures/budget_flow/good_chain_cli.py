"""The fixed chain, hop one: identical to the bad CLI hop."""

from good_chain_engine import verify_all


def cmd_verify(config, conflict_budget=None):
    return verify_all(config, conflict_budget=conflict_budget)
