"""The PR 4 bug, hop one: the CLI parses --budget and forwards it.

This layer is *correct* — the drop happens one module further down,
which is exactly why no per-file pass could see it.
"""

from bad_chain_engine import verify_all


def cmd_verify(config, conflict_budget=None):
    return verify_all(config, conflict_budget=conflict_budget)
