"""The PR 4 bug, hop three: the helper whose default absorbs the drop."""


def run_one(check, config, conflict_budget=None):
    return check.solve(config, conflict_budget)
