"""Opaque forwarding: ``**kwargs`` expansion may carry the budget, so the
checker must stay silent (it cannot prove a drop)."""


def run_one(check, config, conflict_budget=None):
    return check.solve(config, conflict_budget)


def verify_all(config, conflict_budget=None, **kwargs):
    results = []
    for check in config:
        results.append(run_one(check, config, **kwargs))
    return results
