"""Same bug class, intraprocedural flavour: a method drops the deadline."""


class Runner:
    def run(self, checks, deadline_s=None):
        return [self._solve(check) for check in checks]

    def _solve(self, check, deadline_s=None):
        return check.solve(deadline_s)
