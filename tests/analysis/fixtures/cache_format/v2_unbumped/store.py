"""Cache-format fixture: persisted shapes changed, CACHE_FORMAT did not.

Relative to v1: the save-state dict gains ``solver_state``, the tracker
state gains ``learnts``, and ``Payload`` gains a field — all without a
format bump.  Every one of these is the historical bug.
"""

import pickle
from dataclasses import dataclass

CACHE_FORMAT = 1

CACHE_SHAPE_TYPES = ("Payload",)


@dataclass
class Payload:
    digests: dict
    outcomes: list
    learnt_clauses: list


class Store:
    def __init__(self, payload):
        self.payload = payload

    def state_dict(self):
        return {
            "digests": self.payload.digests,
            "outcomes": self.payload.outcomes,
            "learnts": self.payload.learnt_clauses,
        }

    def save(self, path):
        state = {
            "format": CACHE_FORMAT,
            "tracker": self.state_dict(),
            "solver_state": b"",
        }
        with open(path, "wb") as handle:
            pickle.dump(state, handle)
