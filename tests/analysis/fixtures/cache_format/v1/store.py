"""Cache-format fixture, version 1: the manifest is generated from this."""

import pickle
from dataclasses import dataclass

CACHE_FORMAT = 1

CACHE_SHAPE_TYPES = ("Payload",)


@dataclass
class Payload:
    digests: dict
    outcomes: list


class Store:
    def __init__(self, payload):
        self.payload = payload

    def state_dict(self):
        return {"digests": self.payload.digests, "outcomes": self.payload.outcomes}

    def save(self, path):
        state = {"format": CACHE_FORMAT, "tracker": self.state_dict()}
        with open(path, "wb") as handle:
            pickle.dump(state, handle)
