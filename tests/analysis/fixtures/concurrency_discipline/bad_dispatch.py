"""Unguarded module state on a dispatch path: the latent daemon bug.

``Scheduler.run`` fans ``_solve`` out over worker threads; ``_solve``
memoises into a module-level dict with no lock and no declaration.
"""

_RESULT_CACHE = {}


def _solve(check):
    if check not in _RESULT_CACHE:
        _RESULT_CACHE[check] = len(_RESULT_CACHE)
    return _RESULT_CACHE[check]


class Scheduler:
    def run(self, pool, checks):
        return list(pool.map(_solve, checks))
