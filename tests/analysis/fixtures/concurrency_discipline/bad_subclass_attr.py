"""Two escalations: dispatch via a *subclass*, state on the *class*.

``LintScheduler`` inherits dispatcher-hood from ``Scheduler``; the
class-level ``_seen`` dict is shared by every instance, and
``__init__`` does not shadow it with an instance copy.
"""


class Scheduler:
    def dispatch(self, checks):
        raise NotImplementedError


class LintScheduler(Scheduler):
    _seen = {}

    def dispatch(self, checks):
        for check in checks:
            self._seen[check] = True
        return list(self._seen)
