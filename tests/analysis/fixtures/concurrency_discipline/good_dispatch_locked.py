"""The same dispatch shape, with the write behind a lock."""

import threading

_RESULT_CACHE = {}
_CACHE_LOCK = threading.Lock()


def _solve(check):
    with _CACHE_LOCK:
        if check not in _RESULT_CACHE:
            _RESULT_CACHE[check] = len(_RESULT_CACHE)
        return _RESULT_CACHE[check]


class Scheduler:
    def run(self, pool, checks):
        return list(pool.map(_solve, checks))
