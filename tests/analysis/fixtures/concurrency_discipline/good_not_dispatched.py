"""The same unguarded write, but nothing concurrent can reach it.

``Planner`` is not a dispatcher and subclasses none, so the memo write
stays single-threaded and the checker must stay silent.
"""

_RESULT_CACHE = {}


def _solve(check):
    if check not in _RESULT_CACHE:
        _RESULT_CACHE[check] = len(_RESULT_CACHE)
    return _RESULT_CACHE[check]


class Planner:
    def run(self, checks):
        return [_solve(check) for check in checks]
