"""The same dispatch shape, with the state explicitly declared shared.

The declaration is the PICKLE_ROOTS idiom applied to concurrency: an
auditable opt-in stating the discipline (here: value writes are
idempotent, so a lost update is harmless).
"""

#: Idempotent memo values; a racing duplicate write is harmless.
SHARED_STATE = ("_RESULT_CACHE",)

_RESULT_CACHE = {}


def _solve(check):
    if check not in _RESULT_CACHE:
        _RESULT_CACHE[check] = len(_RESULT_CACHE)
    return _RESULT_CACHE[check]


class Scheduler:
    def run(self, pool, checks):
        return list(pool.map(_solve, checks))
