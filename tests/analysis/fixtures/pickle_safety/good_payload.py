"""Negative fixture: the same shapes done picklably."""

from dataclasses import dataclass, field

PICKLE_ROOTS = ("Outcome",)


def _fresh_notes() -> list:
    return []


@dataclass
class Outcome:
    check: "SlottedCheck"
    notes: list = field(default_factory=_fresh_notes)


class SlottedCheck:
    __slots__ = ("kind", "edge")

    def __init__(self, kind, edge):
        self.kind = kind
        self.edge = edge

    def __getstate__(self):
        return (self.kind, self.edge)

    def __setstate__(self, state):
        self.kind, self.edge = state
