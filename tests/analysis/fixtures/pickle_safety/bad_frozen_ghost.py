"""Regression fixture: the historical _FrozenGhost shape (PR 3).

A class defined inside a function, subclassing a payload type — pickle
serialises classes by reference, so the worker-side unpickle fails and
the process backend silently degrades to serial.
"""

from dataclasses import dataclass

PICKLE_ROOTS = ("GhostAttribute",)


@dataclass(frozen=True)
class GhostAttribute:
    name: str
    originated_value: bool


def freeze(ghost):
    @dataclass(frozen=True)
    class _FrozenGhost(GhostAttribute):
        frozen: bool = True

    return _FrozenGhost(ghost.name, ghost.originated_value)
