"""Positive fixture: lambda defaults, bare __slots__, an open handle."""

from dataclasses import dataclass, field

PICKLE_ROOTS = ("Outcome",)


@dataclass
class Outcome:
    check: "SlottedCheck"
    log: "LogHolder"
    notes: list = field(default_factory=lambda: [])


class SlottedCheck:
    __slots__ = ("kind", "edge")

    def __init__(self, kind, edge):
        self.kind = kind
        self.edge = edge


class LogHolder:
    def __init__(self, path):
        self.path = path
        self.handle = open(path)
