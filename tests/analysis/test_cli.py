"""The lint CLI: exit codes, the ratchet workflow, and the real repo gate."""

import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

CHECKER_IDS = (
    "digest-coverage",
    "pickle-safety",
    "deadline-discipline",
    "cache-format-discipline",
    "budget-flow",
    "concurrency-discipline",
    "shim-fidelity",
)


def _run(*argv):
    return main([str(arg) for arg in argv])


def test_clean_tree_exits_zero(tmp_path):
    shutil.copy(FIXTURES / "digest_coverage" / "good_covered.py", tmp_path / "m.py")
    assert _run("--root", tmp_path, "--no-cache", tmp_path) == 0


def test_fresh_findings_exit_one(tmp_path, capsys):
    shutil.copy(FIXTURES / "digest_coverage" / "bad_external_asns.py", tmp_path / "m.py")
    assert _run("--root", tmp_path, "--no-cache", tmp_path) == 1
    out = capsys.readouterr().out
    assert "digest-coverage" in out
    assert "m.py:" in out
    assert "hint:" in out


def test_missing_path_exits_two(tmp_path):
    assert _run("--root", tmp_path, "--no-cache", tmp_path / "nope") == 2


def test_unknown_checker_exits_two(tmp_path):
    (tmp_path / "m.py").write_text("x = 1\n")
    assert _run("--root", tmp_path, "--no-cache",
                "--checker", "no-such-checker", tmp_path) == 2


def test_list_checkers(capsys):
    assert _run("--list-checkers") == 0
    out = capsys.readouterr().out
    for checker_id in CHECKER_IDS:
        assert checker_id in out


def test_ratchet_workflow_exit_codes(tmp_path):
    import json

    target = tmp_path / "net.py"
    baseline = tmp_path / "baseline.json"
    shutil.copy(FIXTURES / "digest_coverage" / "bad_external_asns.py", target)
    base = ("--root", tmp_path, "--no-cache", "--checker", "digest-coverage",
            "--baseline", baseline, tmp_path)

    assert _run(*base) == 1                        # fresh violation
    # Shrink-only: --update-baseline does NOT adopt the fresh finding.
    assert _run("--update-baseline", *base) == 1
    assert json.loads(baseline.read_text())["findings"] == []

    # Adoption is a manual, reviewed edit of the baseline file.
    baseline.write_text(json.dumps(
        {"findings": ["digest-coverage:net.py:Network.external_asns"]}
    ))
    assert _run(*base) == 0                        # baselined: gate passes

    shutil.copy(FIXTURES / "digest_coverage" / "good_covered.py", target)
    assert _run(*base) == 1                        # resolved debt demands a ratchet
    assert _run("--update-baseline", *base) == 0   # baseline shrinks
    assert _run(*base) == 0


def test_cache_dir_round_trip(tmp_path, capsys):
    shutil.copy(FIXTURES / "digest_coverage" / "good_covered.py", tmp_path / "m.py")
    base = ("--root", tmp_path, "--cache-dir", tmp_path / "cache", tmp_path)
    assert _run(*base) == 0
    assert _run(*base) == 0
    out = capsys.readouterr().out
    assert "(1 cached)" in out.splitlines()[-1]


def test_repo_sources_pass_the_gate():
    """The committed baseline + manifest keep src/repro clean — the same
    invocation CI runs as a blocking job."""
    assert _run("--root", REPO_ROOT, "--no-cache", REPO_ROOT / "src" / "repro") == 0


def _module_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def test_python_dash_m_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-checkers"],
        capture_output=True, text=True, env=_module_env(), cwd=REPO_ROOT,
    )
    assert proc.returncode == 0
    assert "deadline-discipline" in proc.stdout


def test_lightyear_lint_subcommand(tmp_path):
    bad = tmp_path / "m.py"
    shutil.copy(FIXTURES / "digest_coverage" / "bad_external_asns.py", bad)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--root", str(tmp_path),
         "--no-cache", str(tmp_path)],
        capture_output=True, text=True, env=_module_env(), cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    assert "digest-coverage" in proc.stdout


def test_jobs_flag_values(tmp_path):
    shutil.copy(FIXTURES / "digest_coverage" / "good_covered.py", tmp_path / "m.py")
    base = ("--root", tmp_path, "--no-cache", tmp_path)
    assert _run("--jobs", "2", *base) == 0
    assert _run("--jobs", "auto", *base) == 0
    assert _run("--jobs", "nope", *base) == 2   # usage error, not a crash
    assert _run("--jobs", "-3", *base) == 2


def _option_strings(parser):
    return {
        opt
        for action in parser._actions
        for opt in action.option_strings
    }


def test_entry_point_parity():
    """`python -m repro.analysis` and `lightyear lint` must expose the
    same flags — both build on add_lint_arguments, and this pins that
    neither grows a private option the other lacks."""
    import argparse

    from repro.analysis.cli import add_lint_arguments
    from repro.cli import build_parser

    standalone = argparse.ArgumentParser()
    add_lint_arguments(standalone)

    subparsers = next(
        action for action in build_parser()._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    lint_parser = subparsers.choices["lint"]

    standalone_opts = _option_strings(standalone)
    lint_opts = _option_strings(lint_parser)
    assert "--jobs" in standalone_opts
    assert standalone_opts == lint_opts
